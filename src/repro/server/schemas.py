"""Wire schemas of the HTTP front end: request validation, response shaping.

Every ``repro.server`` endpoint speaks JSON.  This module is the single
place where untrusted wire payloads are turned into the typed objects the
serving stack works on (:class:`~repro.service.planner.QuerySpec`,
:class:`~repro.rdf.triple.Triple`) and where results are rendered back into
JSON-native dictionaries.  Validation failures raise
:class:`~repro.errors.SchemaError` carrying the dotted field path, which the
HTTP layer renders as a structured ``400`` error body — the transport never
sees a malformed payload reach the engine.

Terms on the wire
-----------------
A term may be written two ways, interchangeably in every position:

* as compact text, the paper's Turtle-like syntax — ``"OBSW001"``,
  ``"Fun:accept_cmd"`` (parsed with ``term_from_text``);
* as the lossless dictionary form of :mod:`repro.io.serialization` —
  ``{"kind": "concept", "name": "accept_cmd", "prefix": "Fun"}`` or
  ``{"kind": "literal", "value": "42", "datatype": "int"}``.

See ``docs/server.md`` for the full request/response reference.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.cost import SearchCost
from repro.errors import (AdmissionError, ReproError, SchemaError,
                          ServerClosingError, ShardError)
from repro.io.serialization import match_to_dict, term_from_dict, triple_to_dict
from repro.rdf.terms import Term, term_from_text
from repro.rdf.triple import Triple, TriplePattern
from repro.service.engine import QueryResult
from repro.service.planner import QueryKind, QuerySpec

__all__ = [
    "MAX_BATCH_QUERIES",
    "MAX_BATCH_INSERTS",
    "PartialInsertError",
    "parse_term",
    "parse_triple",
    "parse_pattern",
    "parse_query_request",
    "parse_insert_request",
    "parse_shard_scan_request",
    "render_result",
    "render_results",
    "render_partition_scan",
    "error_body",
    "status_for",
]

#: Upper bounds on batch sizes, so one request cannot monopolise the engine.
MAX_BATCH_QUERIES = 1024
MAX_BATCH_INSERTS = 4096


# -- field plumbing ------------------------------------------------------------------------

def _require_object(payload: Any, field: str) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise SchemaError(
            f"expected a JSON object, got {type(payload).__name__}", field=field
        )
    return payload


def _reject_unknown(payload: Dict[str, Any], allowed: Tuple[str, ...], field: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise SchemaError(
            f"unknown field(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(allowed)}", field=field
        )


def _number(value: Any, field: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SchemaError(f"expected a number, got {type(value).__name__}", field=field)
    return float(value)


# -- terms, triples, patterns --------------------------------------------------------------

def parse_term(value: Any, field: str = "term") -> Term:
    """One wire term: compact text or the dictionary form."""
    if isinstance(value, str):
        if not value.strip():
            raise SchemaError("a textual term cannot be empty", field=field)
        try:
            return term_from_text(value)
        except ReproError as error:
            raise SchemaError(str(error), field=field) from error
    if isinstance(value, dict):
        # Validate field types *before* building the term: Concept/Literal
        # never type-check their fields, and a non-string name would pass
        # deep into the engine (for an insert: after the WAL append already
        # made the poison record durable and unreplayable).
        for key, entry in value.items():
            if not isinstance(entry, str):
                raise SchemaError(
                    f"term dictionary field {key!r} must be a string, "
                    f"got {type(entry).__name__}", field=field,
                )
        try:
            return term_from_dict(value)
        except (ReproError, KeyError) as error:
            raise SchemaError(f"invalid term dictionary: {error}", field=field) from error
    raise SchemaError(
        f"a term must be a string or a term dictionary, got {type(value).__name__}",
        field=field,
    )


def parse_triple(payload: Any, field: str = "triple") -> Triple:
    """One wire triple: an object with ``subject`` / ``predicate`` / ``object``."""
    payload = _require_object(payload, field)
    _reject_unknown(payload, ("subject", "predicate", "object"), field)
    terms = []
    for position in ("subject", "predicate", "object"):
        if position not in payload:
            raise SchemaError(f"missing required field {position!r}", field=field)
        terms.append(parse_term(payload[position], field=f"{field}.{position}"))
    try:
        return Triple(*terms)
    except ReproError as error:
        raise SchemaError(str(error), field=field) from error


def parse_pattern(payload: Any, field: str = "pattern") -> TriplePattern:
    """An optional-position triple pattern; absent positions are wildcards."""
    payload = _require_object(payload, field)
    _reject_unknown(payload, ("subject", "predicate", "object"), field)
    terms: Dict[str, Optional[Term]] = {}
    for position in ("subject", "predicate", "object"):
        value = payload.get(position)
        if value is None or value == "*":
            terms[position] = None
        else:
            terms[position] = parse_term(value, field=f"{field}.{position}")
    if all(term is None for term in terms.values()):
        raise SchemaError("a pattern needs at least one bound position", field=field)
    return TriplePattern(subject=terms["subject"], predicate=terms["predicate"],
                         object=terms["object"])


# -- query requests ------------------------------------------------------------------------

_QUERY_FIELDS = {
    QueryKind.KNN: ("triple", "k", "pattern", "deadline", "allow_partial"),
    QueryKind.RANGE: ("triple", "radius", "pattern", "deadline", "allow_partial"),
}


def _parse_query(payload: Any, kind: QueryKind, field: str) -> QuerySpec:
    payload = _require_object(payload, field)
    _reject_unknown(payload, _QUERY_FIELDS[kind], field)
    if "triple" not in payload:
        raise SchemaError("missing required field 'triple'", field=field)
    triple = parse_triple(payload["triple"], field=f"{field}.triple")

    pattern: Optional[TriplePattern] = None
    if payload.get("pattern") is not None:
        pattern = parse_pattern(payload["pattern"], field=f"{field}.pattern")

    deadline: Optional[float] = None
    if payload.get("deadline") is not None:
        deadline = _number(payload["deadline"], f"{field}.deadline")
        if deadline <= 0:
            raise SchemaError("a deadline must be a positive number of seconds",
                              field=f"{field}.deadline")

    allow_partial = payload.get("allow_partial", False)
    if not isinstance(allow_partial, bool):
        raise SchemaError(
            f"expected a boolean, got {type(allow_partial).__name__}",
            field=f"{field}.allow_partial",
        )

    try:
        if kind is QueryKind.KNN:
            k = payload.get("k", 3)
            if isinstance(k, bool) or not isinstance(k, int):
                raise SchemaError(f"expected an integer, got {type(k).__name__}",
                                  field=f"{field}.k")
            return QuerySpec.k_nearest(triple, k, pattern=pattern, deadline=deadline,
                                       allow_partial=allow_partial)
        if "radius" not in payload:
            raise SchemaError("missing required field 'radius'", field=field)
        radius = _number(payload["radius"], f"{field}.radius")
        return QuerySpec.range_query(triple, radius, pattern=pattern,
                                     deadline=deadline, allow_partial=allow_partial)
    except SchemaError:
        raise
    except ReproError as error:
        raise SchemaError(str(error), field=field) from error


def parse_query_request(body: Any, kind: QueryKind) -> Tuple[List[QuerySpec], bool]:
    """A query endpoint body: one query object, or ``{"queries": [...]}``.

    Returns the parsed specs and whether the request was *batched* — a
    batched request gets a ``{"results": [...]}`` envelope back even for a
    single-element batch, so clients can treat the response shape as a
    function of the request shape.
    """
    body = _require_object(body, "body")
    if "queries" in body:
        _reject_unknown(body, ("queries",), "body")
        queries = body["queries"]
        if not isinstance(queries, list):
            raise SchemaError(
                f"expected an array, got {type(queries).__name__}", field="queries"
            )
        if not queries:
            raise SchemaError("a batch needs at least one query", field="queries")
        if len(queries) > MAX_BATCH_QUERIES:
            raise SchemaError(
                f"a batch may hold at most {MAX_BATCH_QUERIES} queries, "
                f"got {len(queries)}", field="queries"
            )
        specs = [
            _parse_query(entry, kind, f"queries[{position}]")
            for position, entry in enumerate(queries)
        ]
        return specs, True
    return [_parse_query(body, kind, "body")], False


# -- shard scan requests -------------------------------------------------------------------

_SHARD_FIELDS = {
    QueryKind.KNN: ("coordinates", "k"),
    QueryKind.RANGE: ("coordinates", "radius"),
}


def parse_shard_scan_request(body: Any, kind: QueryKind) -> Tuple[Tuple[float, ...], float]:
    """A shard scan body: embedded query coordinates plus ``k`` or ``radius``.

    Shards never embed: the coordinator projects the query triple once and
    ships raw coordinates, so a shard needs neither the semantic distance
    nor the FastMap space.  Returns ``(coordinates, parameter)`` where the
    parameter is ``k`` (as a float-free int) for k-NN scans and the radius
    for range scans.
    """
    body = _require_object(body, "body")
    _reject_unknown(body, _SHARD_FIELDS[kind], "body")
    if "coordinates" not in body:
        raise SchemaError("missing required field 'coordinates'", field="body")
    raw = body["coordinates"]
    if not isinstance(raw, list) or not raw:
        raise SchemaError("expected a non-empty array of numbers",
                          field="coordinates")
    coordinates = tuple(
        _number(value, f"coordinates[{position}]") for position, value in enumerate(raw)
    )
    if kind is QueryKind.KNN:
        k = body.get("k", 3)
        if isinstance(k, bool) or not isinstance(k, int):
            raise SchemaError(f"expected an integer, got {type(k).__name__}", field="k")
        if k < 1:
            raise SchemaError(f"k must be >= 1, got {k}", field="k")
        return coordinates, k
    if "radius" not in body:
        raise SchemaError("missing required field 'radius'", field="body")
    radius = _number(body["radius"], "radius")
    if radius < 0:
        raise SchemaError("the range radius must be non-negative", field="radius")
    return coordinates, radius


# -- insert requests -----------------------------------------------------------------------

def _parse_insert(payload: Any, field: str) -> Tuple[Triple, Optional[str]]:
    payload = _require_object(payload, field)
    _reject_unknown(payload, ("triple", "document_id"), field)
    if "triple" not in payload:
        raise SchemaError("missing required field 'triple'", field=field)
    triple = parse_triple(payload["triple"], field=f"{field}.triple")
    document_id = payload.get("document_id")
    if document_id is not None and not isinstance(document_id, str):
        raise SchemaError(
            f"expected a string, got {type(document_id).__name__}",
            field=f"{field}.document_id",
        )
    return triple, document_id


def parse_insert_request(body: Any) -> Tuple[List[Tuple[Triple, Optional[str]]], bool]:
    """An insert body: one insert object, or ``{"inserts": [...]}``.

    Returns ``(inserts, batched)`` with ``inserts`` a list of
    ``(triple, document_id)`` pairs in request order.
    """
    body = _require_object(body, "body")
    if "inserts" in body:
        _reject_unknown(body, ("inserts",), "body")
        inserts = body["inserts"]
        if not isinstance(inserts, list):
            raise SchemaError(
                f"expected an array, got {type(inserts).__name__}", field="inserts"
            )
        if not inserts:
            raise SchemaError("a batch needs at least one insert", field="inserts")
        if len(inserts) > MAX_BATCH_INSERTS:
            raise SchemaError(
                f"a batch may hold at most {MAX_BATCH_INSERTS} inserts, "
                f"got {len(inserts)}", field="inserts"
            )
        return [
            _parse_insert(entry, f"inserts[{position}]")
            for position, entry in enumerate(inserts)
        ], True
    return [_parse_insert(body, "body")], False


class PartialInsertError(RuntimeError):
    """A batch insert failed mid-way after some triples were already durable.

    Deliberately *not* a :class:`ReproError`: the batch passed schema
    validation, so a mid-batch failure is a storage-layer event and maps to
    500.  ``details`` (surfaced in the error body) tells the client exactly
    what was applied, because those inserts are WAL-durable and queryable —
    a blind retry of the whole batch would duplicate them.
    """

    def __init__(self, message: str, *, accepted: int, first_seq: int, last_seq: int):
        super().__init__(message)
        self.details = {
            "accepted": accepted, "first_seq": first_seq, "last_seq": last_seq,
        }


# -- responses -----------------------------------------------------------------------------

def render_result(result: QueryResult) -> Dict[str, Any]:
    """One served query as a JSON-native dictionary (see ``docs/server.md``).

    ``degraded`` appears only on partial answers (``allow_partial`` queries
    that lost partitions): a complete answer has no key, so clients can
    treat its presence as the degradation signal.
    """
    payload = {
        "matches": [match_to_dict(match) for match in result.matches],
        "cached": result.cached,
        "timed_out": result.timed_out,
        "error": result.error,
        "latency_ms": result.latency_seconds * 1000.0,
    }
    if result.degraded is not None:
        payload["degraded"] = result.degraded
    return payload


def render_results(results: List[QueryResult], batched: bool) -> Dict[str, Any]:
    """The endpoint body: a bare result, or a ``{"results": [...]}`` envelope."""
    if batched:
        return {"results": [render_result(result) for result in results]}
    return render_result(results[0])


def render_partition_scan(partition_id: str, neighbours, *, nodes_visited: int,
                          points_examined: int, elapsed_seconds: float,
                          cost: Optional[SearchCost] = None) -> Dict[str, Any]:
    """One shard scan as a JSON-native dictionary.

    Matches carry the lossless triple dictionary, the stored point's
    embedded coordinates and the distance; shards do not know document
    provenance (the coordinator owns the provenance map and dresses merged
    results itself).  JSON floats round-trip exactly in Python, so the
    coordinator's merge sees bit-identical distances.  The ``cost``
    counters cross the wire so the coordinator can report cluster-wide
    work; older shards simply omit the key.
    """
    payload = {
        "partition_id": partition_id,
        "matches": [
            {
                "triple": triple_to_dict(neighbour.point.label),
                "text": str(neighbour.point.label),
                "coordinates": list(neighbour.point.coordinates),
                "distance": neighbour.distance,
            }
            for neighbour in neighbours
        ],
        "nodes_visited": nodes_visited,
        "points_examined": points_examined,
        "latency_ms": elapsed_seconds * 1000.0,
    }
    if cost is not None:
        payload["cost"] = cost.to_dict()
    return payload


# -- errors --------------------------------------------------------------------------------

def status_for(error: Exception) -> int:
    """Map an exception to the HTTP status the endpoint responds with.

    Client-caused failures — malformed payloads, invalid parameters, unknown
    vocabulary terms — are :class:`~repro.errors.ReproError` subclasses and
    map to ``400``; a request reaching a shutting-down server is ``503``
    (retryable, not the client's fault), as is one shed by admission
    control (which additionally carries a ``Retry-After`` hint); a
    scatter-gather that lost one or more shard backends is ``502`` (the
    front end is healthy, a backend is not); anything else is a
    server-side ``500``.
    """
    if isinstance(error, (ServerClosingError, AdmissionError)):
        return 503
    if isinstance(error, ShardError):
        return 502
    return 400 if isinstance(error, ReproError) else 500


def error_body(error: Exception) -> Dict[str, Any]:
    """The structured error payload every non-2xx response carries."""
    payload: Dict[str, Any] = {
        "error": {"type": type(error).__name__, "message": str(error)}
    }
    field = getattr(error, "field", None)
    if field is not None:
        payload["error"]["field"] = field
    details = getattr(error, "details", None)
    if isinstance(details, dict):
        payload["error"]["details"] = details
    reason = getattr(error, "reason", None)
    if isinstance(reason, str):
        payload["error"]["reason"] = reason
    retry_after = getattr(error, "retry_after", None)
    if isinstance(retry_after, (int, float)):
        payload["error"]["retry_after"] = float(retry_after)
    return payload
