"""String distances for literal/literal comparisons.

The paper: "the two triples' elements are both literals/constants of the
same type (we can apply any distance function between strings, i.e.
Levenshtein)".  This module implements the classical edit distances plus
normalised variants returning values in ``[0, 1]`` as required by the
weighted triple distance.
"""

from __future__ import annotations

from typing import Callable

__all__ = [
    "levenshtein",
    "normalised_levenshtein",
    "damerau_levenshtein",
    "jaro",
    "jaro_winkler",
    "jaro_winkler_distance",
    "hamming",
    "exact_match_distance",
    "StringDistance",
]

#: Type alias: a normalised string distance maps two strings to ``[0, 1]``.
StringDistance = Callable[[str, str], float]


def levenshtein(a: str, b: str) -> int:
    """Classic Levenshtein edit distance (insertions, deletions, substitutions)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string in the inner loop for memory friendliness.
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (0 if char_a == char_b else 1)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def normalised_levenshtein(a: str, b: str) -> float:
    """Levenshtein distance normalised to ``[0, 1]`` by the longer string length."""
    if a == b:
        return 0.0
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return levenshtein(a, b) / longest


def damerau_levenshtein(a: str, b: str) -> int:
    """Damerau–Levenshtein distance (edit distance with adjacent transpositions)."""
    len_a, len_b = len(a), len(b)
    if a == b:
        return 0
    if not a:
        return len_b
    if not b:
        return len_a
    infinity = len_a + len_b
    # distance matrix with a sentinel row/column for transposition handling
    distance = [[0] * (len_b + 2) for _ in range(len_a + 2)]
    distance[0][0] = infinity
    for i in range(len_a + 1):
        distance[i + 1][0] = infinity
        distance[i + 1][1] = i
    for j in range(len_b + 1):
        distance[0][j + 1] = infinity
        distance[1][j + 1] = j
    last_seen: dict[str, int] = {}
    for i in range(1, len_a + 1):
        last_match_column = 0
        for j in range(1, len_b + 1):
            last_match_row = last_seen.get(b[j - 1], 0)
            cost = 0 if a[i - 1] == b[j - 1] else 1
            if cost == 0:
                last_match_column = j
            distance[i + 1][j + 1] = min(
                distance[i][j] + cost,                      # substitution
                distance[i + 1][j] + 1,                     # insertion
                distance[i][j + 1] + 1,                     # deletion
                distance[last_match_row][last_match_column]
                + (i - last_match_row - 1) + 1 + (j - last_match_column - 1),
            )
        last_seen[a[i - 1]] = i
    return distance[len_a + 1][len_b + 1]


def jaro(a: str, b: str) -> float:
    """Jaro similarity in ``[0, 1]`` (1 means identical)."""
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    match_window = max(len_a, len_b) // 2 - 1
    match_window = max(match_window, 0)
    a_matched = [False] * len_a
    b_matched = [False] * len_b
    matches = 0
    for i, char_a in enumerate(a):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len_b)
        for j in range(start, end):
            if b_matched[j] or b[j] != char_a:
                continue
            a_matched[i] = True
            b_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len_a):
        if not a_matched[i]:
            continue
        while not b_matched[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, *, prefix_scale: float = 0.1) -> float:
    """Jaro–Winkler similarity, boosting strings with a common prefix."""
    base = jaro(a, b)
    prefix_length = 0
    for char_a, char_b in zip(a, b):
        if char_a != char_b or prefix_length == 4:
            break
        prefix_length += 1
    return base + prefix_length * prefix_scale * (1.0 - base)


def jaro_winkler_distance(a: str, b: str) -> float:
    """``1 - jaro_winkler``, a normalised distance in ``[0, 1]``."""
    return 1.0 - jaro_winkler(a, b)


def hamming(a: str, b: str) -> int:
    """Hamming distance for equal-length strings.

    Raises
    ------
    ValueError
        If the strings have different lengths.
    """
    if len(a) != len(b):
        raise ValueError("hamming distance requires strings of equal length")
    return sum(1 for char_a, char_b in zip(a, b) if char_a != char_b)


def exact_match_distance(a: str, b: str) -> float:
    """0 when the strings are identical, 1 otherwise (a trivial baseline distance)."""
    return 0.0 if a == b else 1.0
