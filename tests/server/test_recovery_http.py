"""Boot → serve → insert → die → recover round trips over real servers."""

from __future__ import annotations

import pytest

from server_corpus import (ACTORS, BASE_TRIPLES, INSERT_TRIPLES, QUERY_TRIPLES,
                           canonical)
from repro.core import SemTreeConfig, SemTreeIndex
from repro.server import ServerApp, create_server, derive_distance, recover_index
from repro.server.bootstrap import harvest_triples, vocabulary_hints
from repro.workloads import ServerClient


def oracle_index(distance, extra_triples):
    """A from-scratch rebuild over base + extras: the recovery ground truth."""
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=3, bucket_size=4, max_partitions=2, partition_capacity=8,
    ))
    index.add_triples(BASE_TRIPLES)
    index.build()
    index.insert_triples(extra_triples)
    return index


class TestBootstrapHelpers:
    def test_harvest_finds_snapshot_and_wal_triples(self, make_server, tmp_path):
        server, client = make_server()
        client.insert_many(INSERT_TRIPLES[:4])
        server.close()  # checkpoint to tmp_path/snapshot.json
        harvested = harvest_triples(tmp_path / "snapshot.json", tmp_path / "wal.jsonl")
        assert set(BASE_TRIPLES) <= set(harvested)
        assert set(INSERT_TRIPLES[:4]) <= set(harvested)

    def test_vocabulary_hints(self):
        actors, parameters = vocabulary_hints(BASE_TRIPLES + INSERT_TRIPLES)
        assert set(actors) == set(ACTORS)
        assert "start-up" in parameters["CmdType"]
        assert "volt-frame" in parameters["TmType"]

    def test_harvest_walks_past_malformed_term_dicts(self, tmp_path):
        # A dict that *looks* like a triple but has incomplete term dicts
        # must be skipped, not crash the boot (term_from_dict raises
        # KeyError on a missing name, not ParseError).
        import json

        from repro.io.serialization import triple_to_dict
        snapshot = tmp_path / "weird.json"
        snapshot.write_text(json.dumps({
            "decoy": {"subject": {"kind": "concept"}, "predicate": {},
                      "object": {"kind": "literal"}},
            "real": triple_to_dict(BASE_TRIPLES[0]),
        }))
        assert harvest_triples(snapshot) == [BASE_TRIPLES[0]]

    def test_derived_distance_matches_original(self, make_server, tmp_path, distance):
        server, client = make_server()
        client.insert_many(INSERT_TRIPLES)
        server.close()
        derived = derive_distance(tmp_path / "snapshot.json", tmp_path / "wal.jsonl")
        for left in QUERY_TRIPLES:
            for right in BASE_TRIPLES + INSERT_TRIPLES:
                assert derived(left, right) == pytest.approx(distance(left, right))


class TestKillAndRecover:
    def test_clean_shutdown_then_reboot(self, make_server, tmp_path, distance):
        server, client = make_server()
        client.insert_many(INSERT_TRIPLES, document_id="stream")
        server.close()  # graceful: fold, checkpoint, truncate WAL

        recovered = recover_index(tmp_path / "snapshot.json", tmp_path / "wal.jsonl")
        with create_server(ServerApp(recovered, background_compaction=False)) as reborn:
            reborn.serve_background()
            reborn_client = ServerClient(reborn.url)
            oracle = oracle_index(distance, INSERT_TRIPLES)
            for triple in QUERY_TRIPLES:
                wire = reborn_client.knn(triple, 3)
                assert canonical(wire["matches"]) == \
                    canonical(oracle.k_nearest(triple, 3))

    def test_crash_without_checkpoint_recovers_from_wal_tail(
            self, make_server, tmp_path, distance):
        server, client = make_server()
        client.insert_many(INSERT_TRIPLES[:3])
        server.app.index.checkpoint(tmp_path / "snapshot.json")  # mid-flight checkpoint
        client.insert_many(INSERT_TRIPLES[3:])                   # WAL tail only
        server.close(checkpoint=False)                           # "crash": no new snapshot

        recovered = recover_index(tmp_path / "snapshot.json", tmp_path / "wal.jsonl")
        assert len(recovered) == len(BASE_TRIPLES) + len(INSERT_TRIPLES)
        assert recovered.statistics()["replayed"] == len(INSERT_TRIPLES) - 3
        oracle = oracle_index(distance, INSERT_TRIPLES)
        for triple in QUERY_TRIPLES:
            assert canonical(recovered.k_nearest(triple, 3)) == \
                canonical(oracle.k_nearest(triple, 3))

    def test_recovered_server_accepts_further_inserts(self, make_server, tmp_path):
        server, client = make_server()
        client.insert(INSERT_TRIPLES[0])
        server.close()

        recovered = recover_index(tmp_path / "snapshot.json", tmp_path / "wal.jsonl")
        app = ServerApp(recovered, checkpoint_path=tmp_path / "snapshot.json",
                        background_compaction=False)
        with create_server(app) as reborn:
            reborn.serve_background()
            reborn_client = ServerClient(reborn.url)
            response = reborn_client.insert(INSERT_TRIPLES[1])
            assert response["seq"] == 2  # numbering continues across the checkpoint
            result = reborn_client.knn(INSERT_TRIPLES[1], 1)
            assert result["matches"][0]["text"] == str(INSERT_TRIPLES[1])


class TestIngestingIndexRequired:
    def test_plain_index_rejected(self, make_base, tmp_path):
        from repro.errors import QueryError
        with pytest.raises(QueryError, match="IngestingIndex"):
            ServerApp(make_base())
