"""Figure 5 — Distributed k-nearest running time (K = 3).

The paper plots the running time of the distributed k-nearest algorithm
while varying the size of the tree, for 1, 3, 5 and 9 partitions on its
8-node cluster.  The reproduction runs a *batch* of queries (throughput
regime) against the simulated cluster and reports wall-clock time, the
simulated parallel cost (critical path) and the message count.  Expected
shape: the simulated cost grows with the number of points and decreases as
partitions are added (with diminishing returns), while messages grow with
the partition count.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.cluster import SimulatedCluster
from repro.core import DistributedSemTree, SemTreeConfig
from repro.evaluation import Experiment, measure
from repro.workloads import perturbed_queries, uniform_points

from .conftest import write_report

DIMENSIONS = 4
BUCKET_SIZE = 16
K = 3
POINT_COUNTS = (1_000, 2_000, 4_000, 8_000)
PARTITION_COUNTS = (1, 3, 5, 9)
QUERIES = 50
BENCH_POINTS = 4_000


def _build(count: int, partitions: int):
    points = uniform_points(count, DIMENSIONS, seed=1)
    cluster = SimulatedCluster(node_count=max(partitions, 1))
    config = SemTreeConfig(
        dimensions=DIMENSIONS, bucket_size=BUCKET_SIZE, max_partitions=partitions,
        partition_capacity=max(64, BUCKET_SIZE * partitions),
    )
    tree = DistributedSemTree(config, cluster=cluster)
    tree.insert_all(points)
    return points, tree, cluster


def _knn_batch(tree: DistributedSemTree, cluster: SimulatedCluster, points) -> Dict[str, float]:
    workload = perturbed_queries(points, QUERIES, k=K, seed=4)
    sample = measure(lambda: [tree.k_nearest(query, K) for query in workload],
                     cluster=cluster)
    return {
        "wall_ms_per_query": sample.wall_ms / QUERIES,
        "simulated_cost": (sample.simulated_critical_path or 0.0),
        "messages": float(sample.messages or 0),
    }


# -- pytest-benchmark cases ---------------------------------------------------------------

@pytest.mark.parametrize("partitions", PARTITION_COUNTS)
@pytest.mark.benchmark(group="fig5-distributed-knn")
def test_distributed_knn_batch(benchmark, partitions):
    points, tree, _ = _build(BENCH_POINTS, partitions)
    workload = perturbed_queries(points, QUERIES, k=K, seed=4)

    def run():
        return sum(len(tree.k_nearest(query, K)) for query in workload)

    assert benchmark(run) == QUERIES * K


# -- the figure itself ----------------------------------------------------------------------

@pytest.mark.benchmark(group="fig5-distributed-knn")
def test_report_fig5(benchmark, results_dir):
    def run_sweep() -> Experiment:
        experiment = Experiment(
            experiment_id="fig5_distributed_knn_time",
            description="Distributed k-nearest time (K=3) vs number of points (Fig. 5)",
            swept_parameter="points",
        )
        for count in POINT_COUNTS:
            for partitions in PARTITION_COUNTS:
                points, tree, cluster = _build(count, partitions)
                label = "1 partition" if partitions == 1 else f"{partitions} partitions"
                experiment.record(label, count, **_knn_batch(tree, cluster, points))
        return experiment

    experiment = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    # Simulated k-NN cost grows only logarithmically with N, so the clean
    # monotonicity check is applied to the single-partition configuration
    # (multi-partition layouts add partition-shape noise of the same order).
    single = experiment.series["1 partition"]
    assert single.is_non_decreasing(
        "simulated_cost", tolerance=max(single.values("simulated_cost")) * 0.15
    )
    # At the largest size, adding partitions reduces the simulated parallel cost.
    largest_costs = {
        name: series.values("simulated_cost")[-1]
        for name, series in experiment.series.items()
    }
    assert largest_costs["9 partitions"] < largest_costs["1 partition"]
    assert largest_costs["5 partitions"] < largest_costs["1 partition"]
    # Partitioning pays a communication price: messages increase with partitions.
    assert (experiment.series["9 partitions"].values("messages")[-1]
            > experiment.series["3 partitions"].values("messages")[-1])
    assert experiment.series["1 partition"].values("messages")[-1] == 0

    write_report(results_dir, experiment, ["simulated_cost", "wall_ms_per_query", "messages"])
