"""Experiment runner: parameter sweeps producing named data series.

Every figure of the paper is a family of curves ("series") over a swept
parameter (number of points, number of partitions, K).  The runner provides
a tiny, dependency-free way to express those sweeps and collect the results
in a uniform structure that the report module can print and the tests can
assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.errors import EvaluationError

__all__ = ["SeriesPoint", "Series", "Experiment"]


@dataclass(frozen=True, slots=True)
class SeriesPoint:
    """One observation: the swept parameter value and the measured metrics."""

    x: float
    metrics: Dict[str, float]

    def metric(self, name: str) -> float:
        """Return one metric by name.

        Raises
        ------
        EvaluationError
            If the metric was not recorded.
        """
        try:
            return self.metrics[name]
        except KeyError:
            raise EvaluationError(
                f"metric {name!r} was not recorded (have: {sorted(self.metrics)})"
            ) from None


@dataclass
class Series:
    """A named curve: a list of :class:`SeriesPoint` in sweep order."""

    name: str
    points: List[SeriesPoint] = field(default_factory=list)

    def add(self, x: float, **metrics: float) -> None:
        """Append one observation."""
        self.points.append(SeriesPoint(x=x, metrics=dict(metrics)))

    def xs(self) -> List[float]:
        """The swept parameter values, in order."""
        return [point.x for point in self.points]

    def metric_names(self) -> List[str]:
        """Every metric recorded anywhere in the series, sorted."""
        names = {name for point in self.points for name in point.metrics}
        return sorted(names)

    def to_payload(self) -> Dict[str, object]:
        """A JSON-ready mapping: the swept values plus one list per metric.

        Metrics missing at some sweep point show as ``None`` so every list
        aligns with ``x``.
        """
        return {
            "x": self.xs(),
            "metrics": {
                name: [point.metrics.get(name) for point in self.points]
                for name in self.metric_names()
            },
        }

    def values(self, metric: str) -> List[float]:
        """The values of one metric along the sweep."""
        return [point.metric(metric) for point in self.points]

    def is_non_decreasing(self, metric: str, *, tolerance: float = 0.0) -> bool:
        """True when the metric never decreases along the sweep (within tolerance)."""
        values = self.values(metric)
        return all(b >= a - tolerance for a, b in zip(values, values[1:]))

    def is_non_increasing(self, metric: str, *, tolerance: float = 0.0) -> bool:
        """True when the metric never increases along the sweep (within tolerance)."""
        values = self.values(metric)
        return all(b <= a + tolerance for a, b in zip(values, values[1:]))

    def __len__(self) -> int:
        return len(self.points)


@dataclass
class Experiment:
    """A named experiment: an identifier (e.g. ``"fig3"``), a description and its series."""

    experiment_id: str
    description: str
    swept_parameter: str
    series: Dict[str, Series] = field(default_factory=dict)

    def series_named(self, name: str) -> Series:
        """Get (or create) a series by name."""
        if name not in self.series:
            self.series[name] = Series(name=name)
        return self.series[name]

    def record(self, series_name: str, x: float, **metrics: float) -> None:
        """Record one observation into a series."""
        self.series_named(series_name).add(x, **metrics)

    def run_sweep(self, series_name: str, xs: Sequence[float],
                  body: Callable[[float], Dict[str, float]]) -> Series:
        """Run ``body(x)`` for every swept value and record its metric dict."""
        series = self.series_named(series_name)
        for x in xs:
            metrics = body(x)
            series.add(x, **metrics)
        return series

    def to_payload(self) -> Dict[str, object]:
        """A JSON-ready mapping of the whole experiment (see :meth:`Series.to_payload`).

        This is the machine-readable twin of
        :func:`repro.evaluation.report.format_experiment`; the benchmark
        harness writes it to ``BENCH_<experiment_id>.json`` at the repository
        root so the performance trajectory is tracked in version control.
        """
        return {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "swept_parameter": self.swept_parameter,
            "series": {name: series.to_payload()
                       for name, series in sorted(self.series.items())},
        }

    def __repr__(self) -> str:
        return (
            f"Experiment(id={self.experiment_id!r}, series={sorted(self.series)}, "
            f"swept={self.swept_parameter!r})"
        )
