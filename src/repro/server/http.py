"""The HTTP transport: a threading stdlib server over :class:`ServerApp`.

One :class:`SemTreeServer` binds one :class:`~repro.server.app.ServerApp`
to a host/port.  It is built on :class:`http.server.ThreadingHTTPServer` —
one thread per connection, which composes with the engine's worker pool and
the ingest layer's reader/writer locking (inserts and queries already
interleave safely in-process; HTTP threads are just more callers).

The transport is deliberately dumb: route, read the JSON body, call the
app, serialise the reply.  Every error — malformed JSON, schema violations,
vocabulary misses, engine failures — becomes a structured JSON error body
(:func:`repro.server.schemas.error_body`) with the status picked by
:func:`~repro.server.schemas.status_for`; the transport itself only adds
the routing errors (404/405), the body-size guard (413) and the
content-type check (415).
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

from repro import __version__
from repro.faults import FaultPlan
from repro.obs import export as obs_export
from repro.obs import logging as obs_logging
from repro.obs import prometheus as obs_prometheus
from repro.obs.tracing import Trace, activate, current_trace, sanitize_trace_id, span
from repro.server.app import ServerApp
from repro.server.context import (CLIENT_ID_HEADER, IDEMPOTENCY_KEY_HEADER,
                                  request_context)
from repro.server.schemas import error_body, status_for

__all__ = ["SemTreeServer", "MAX_BODY_BYTES"]

#: Largest request body accepted, in bytes (a 4096-triple insert batch fits
#: comfortably; anything bigger should be split).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Header values accepted as "yes" for the ``X-Debug-Trace`` opt-in.
_DEBUG_TRACE_VALUES = frozenset({"1", "true", "yes", "on"})

_access_log = obs_logging.get_logger("repro.access")


class _Handler(BaseHTTPRequestHandler):
    """Routes one connection's requests into the bound :class:`ServerApp`."""

    server_version = f"repro-semtree/{__version__}"
    protocol_version = "HTTP/1.1"

    #: Socket timeout per request, seconds.  Bounds how long a handler
    #: thread can sit in a blocking read (a client that sends headers and
    #: then stalls mid-body, or an idle keep-alive connection) — without
    #: it, each such socket would pin a handler thread forever and an idle
    #: keep-alive client would block the shutdown join indefinitely.
    #: ``handle_one_request`` turns the timeout into connection close.
    timeout = 30.0

    #: Disable Nagle's algorithm on accepted sockets.  The request/response
    #: exchange here is small writes in both directions; Nagle batching
    #: interacts with the peer's delayed ACKs into a ~40 ms stall per
    #: exchange, which was the bulk of the 44 ms per-request floor the
    #: benchmarks measured (ROADMAP Open item 1).
    disable_nagle_algorithm = True

    # Set per server class in SemTreeServer.__init__.
    app: ServerApp
    quiet: bool = True
    fault_plan: Optional[FaultPlan] = None

    # -- connection lifecycle -----------------------------------------------------------
    # Keep-alive clients hold their connection open between requests; the
    # handler thread then blocks awaiting the next request line.  So that
    # shutdown does not have to sit out the full socket timeout per idle
    # connection, each handler registers itself with the server and flags
    # when it is busy serving a request: close() force-closes the idle ones
    # (unblocking their reads immediately) and lets the busy ones drain.
    # The idle→busy flip happens under the server's handler lock the moment
    # a request line arrives, and the shutdown sweep shuts idle sockets
    # under the same lock — so a request that won the race is drained, one
    # that lost it fails before the app ever sees it.

    _busy = False

    def handle(self) -> None:
        register = getattr(self.server, "track_handler", None)
        if register is None:  # pragma: no cover - plain ThreadingHTTPServer
            super().handle()
            return
        register(self)
        try:
            super().handle()
        finally:
            self.server.untrack_handler(self)

    def handle_one_request(self) -> None:
        """One request, with idle/busy tracking around the blocking read."""
        lock = getattr(self.server, "_handlers_lock", None)
        if lock is None:  # pragma: no cover - plain ThreadingHTTPServer
            super().handle_one_request()
            return
        original_readline = self.rfile.readline

        def tracking_readline(limit: int = -1) -> bytes:
            data = original_readline(limit)
            if data and not self._busy:
                with lock:
                    self._busy = True
            return data

        self.rfile.readline = tracking_readline
        try:
            super().handle_one_request()
        finally:
            self.rfile.readline = original_readline
            self._busy = False
            if getattr(self.server, "draining", False):
                # The server is shutting down: do not return to an idle
                # blocking read this connection's client may never end.
                self.close_connection = True

    # -- routing ------------------------------------------------------------------------
    # The app owns its routing tables (ServerApp, ShardApp and
    # CoordinatorApp each expose their own endpoints); the transport just
    # dispatches into them.

    @property
    def _post_routes(self) -> Dict[str, Callable[[Any], Dict[str, Any]]]:
        return self.app.post_routes()

    @property
    def _get_routes(self) -> Dict[str, Callable[[], Dict[str, Any]]]:
        return self.app.get_routes()

    @property
    def _get_param_routes(self) -> Dict[str, Callable[[Dict[str, str]], Any]]:
        """GET endpoints that consume the query string (optional per app).

        A handler here receives the parsed query parameters and returns
        either a JSON-native dictionary or a ``(content_type, text)`` pair
        for non-JSON payloads (a collapsed-stack profile, for instance).
        """
        table = getattr(self.app, "get_param_routes", None)
        return table() if table is not None else {}

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        self._observe_request(self._handle_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler naming
        self._observe_request(self._handle_post)

    # -- request observability ----------------------------------------------------------

    def _observe_request(self, method_body: Callable[[Trace], None]) -> None:
        """Run one request under a fresh trace and emit the access log line.

        The trace id is the client's ``X-Trace-Id`` when plausible (how the
        coordinator stitches its id through the shard fleet) or freshly
        generated; every response echoes it back in the same header.
        """
        trace = Trace(sanitize_trace_id(self.headers.get("X-Trace-Id")))
        self._last_status: Optional[int] = None
        self._drip = None
        started = time.perf_counter()
        with activate(trace):
            with span("request", method=self.command, path=self._route()):
                with request_context(
                    client_id=self.headers.get(CLIENT_ID_HEADER),
                    idempotency_key=self.headers.get(IDEMPOTENCY_KEY_HEADER),
                ):
                    if not self._inject_fault():
                        method_body(trace)
        _access_log.info(
            "%s %s -> %s", self.command, self._route(), self._last_status,
            extra={
                "event": "http_request",
                "method": self.command,
                "path": self._route(),
                "status": self._last_status,
                "duration_ms": (time.perf_counter() - started) * 1000.0,
                "client": f"{self.client_address[0]}:{self.client_address[1]}",
                "trace_id": trace.trace_id,
            },
        )

    def _inject_fault(self) -> bool:
        """Consult the server's fault plan for this request (chaos runs only).

        Returns True when the fault fully handled the request (the app must
        not run).  Latency and slow-drip faults let the request proceed —
        the former after sleeping here, the latter by arming ``_drip`` so
        :meth:`_send_body` dribbles the response out.
        """
        if self.fault_plan is None:
            return False
        fault = self.fault_plan.decide("handle", self._route())
        if fault is None:
            return False
        if fault.kind == "latency":
            time.sleep(fault.latency)
            return False
        if fault.kind == "slow_drip":
            self._drip = fault
            return False
        if fault.kind == "http_5xx":
            self._close_if_body_pending()
            self._send_json(fault.status, {"error": {
                "type": "InjectedFault",
                "message": f"injected HTTP {fault.status} "
                           f"(fault plan, {self._route()})",
            }})
            return True
        # "error": a mid-request connection reset — shut the socket without
        # a response so the client sees exactly what a crashed peer causes.
        self._last_status = -1
        self.close_connection = True
        try:
            self.connection.shutdown(socket.SHUT_RDWR)
        except OSError:  # pragma: no cover - already gone
            pass
        return True

    def _debug_trace_requested(self) -> bool:
        value = self.headers.get("X-Debug-Trace", "")
        return value.strip().lower() in _DEBUG_TRACE_VALUES

    def _attach_debug(self, payload: Dict[str, Any], trace: Trace) -> Dict[str, Any]:
        """Add the ``debug.trace`` section when the client opted in.

        The span tree is rendered here, before serialisation, so the
        ``serialize`` span of *this* request necessarily reports itself
        in-progress; its cost is visible as the request/handle gap instead.
        """
        if self._debug_trace_requested() and isinstance(payload, dict):
            return {**payload, "debug": {"trace": trace.to_dict()}}
        return payload

    def _handle_get(self, trace: Trace) -> None:
        # GETs never read a body; if a client sent one anyway, the unread
        # bytes must not be parsed as the next request on this connection.
        self._close_if_body_pending()
        route = self._route()
        param_handler = self._get_param_routes.get(route)
        if param_handler is not None:
            try:
                with span("handle", endpoint=route):
                    payload = param_handler(self._query_params())
            except Exception as error:  # noqa: BLE001 - every failure becomes a body
                self._send_error(error)
                return
            if isinstance(payload, tuple):
                content_type, text = payload
                self._send_text(200, text, content_type)
            else:
                self._send_json(200, self._attach_debug(payload, trace))
            return
        handler = self._get_routes.get(route)
        if handler is None:
            self._send_routing_error()
            return
        requested_format = self._query_params().get("format")
        if route == "/v1/metrics" and requested_format not in (None, "json"):
            self._send_metrics_exposition(requested_format)
            return
        try:
            with span("handle", endpoint=route):
                payload = handler()
        except Exception as error:  # noqa: BLE001 - every failure becomes a body
            self._send_error(error)
            return
        self._send_json(200, self._attach_debug(payload, trace))

    def _handle_post(self, trace: Trace) -> None:
        route = self._route()
        handler = self._post_routes.get(route)
        if handler is None:
            self._send_routing_error()
            return
        with span("read_body"):
            body, failure = self._read_json_body()
        if failure is not None:
            self._send_json(*failure)
            return
        try:
            with span("handle", endpoint=route):
                payload = handler(body)
        except Exception as error:  # noqa: BLE001 - every failure becomes a body
            self._send_error(error)
            return
        self._send_json(200, self._attach_debug(payload, trace))

    def _send_metrics_exposition(self, requested_format: str) -> None:
        renderer = getattr(self.app, "metrics_prometheus", None)
        if requested_format != "prometheus" or renderer is None:
            self._send_json(400, {"error": {
                "type": "QueryError",
                "message": f"unknown metrics format {requested_format!r}; "
                           "expected 'json' or 'prometheus'",
            }})
            return
        try:
            with span("handle", endpoint="/v1/metrics"):
                text = renderer()
        except Exception as error:  # noqa: BLE001 - every failure becomes a body
            self._send_error(error)
            return
        self._send_text(200, text, obs_prometheus.CONTENT_TYPE)

    def _route(self) -> str:
        return self.path.split("?", 1)[0].rstrip("/") or "/"

    def _query_params(self) -> Dict[str, str]:
        """The request's query-string parameters (last value wins)."""
        if "?" not in self.path:
            return {}
        parsed = urllib.parse.parse_qs(self.path.split("?", 1)[1],
                                       keep_blank_values=True)
        return {key: values[-1] for key, values in parsed.items()}

    def _send_routing_error(self) -> None:
        self._close_if_body_pending()
        known = (set(self._post_routes) | set(self._get_routes)
                 | set(self._get_param_routes))
        if self._route() in known:
            self._send_json(405, {"error": {
                "type": "MethodNotAllowed",
                "message": f"{self.command} is not supported on {self._route()}",
            }})
        else:
            self._send_json(404, {"error": {
                "type": "NotFound",
                "message": f"unknown endpoint {self._route()!r}; "
                           "see docs/server.md for the API reference",
            }})

    # -- body plumbing ------------------------------------------------------------------

    def _close_if_body_pending(self) -> None:
        """Close after responding when an unread request body is on the socket.

        Any error path that skips reading the body must not let the
        connection be reused: the unread bytes would be parsed as the next
        request line and desync every subsequent exchange.
        """
        if self.headers.get("Content-Length") or self.headers.get("Transfer-Encoding"):
            self.close_connection = True

    def _read_json_body(self) -> Tuple[Any, Optional[Tuple[int, Dict[str, Any]]]]:
        content_type = self.headers.get("Content-Type", "application/json")
        if "json" not in content_type:
            self._close_if_body_pending()
            return None, (415, {"error": {
                "type": "UnsupportedMediaType",
                "message": f"expected application/json, got {content_type!r}",
            }})
        # Bodies whose framing we cannot (chunked) or will not (missing
        # length) read would desync the keep-alive connection — the unread
        # bytes would be parsed as the next request line — so those error
        # paths also close the connection.
        if self.headers.get("Transfer-Encoding"):
            self.close_connection = True
            return None, (501, {"error": {
                "type": "NotImplemented",
                "message": "chunked transfer encoding is not supported; "
                           "send a Content-Length",
            }})
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else -1
        except ValueError:
            length = -1
        if length < 0:
            self.close_connection = True
            return None, (411, {"error": {
                "type": "LengthRequired",
                "message": "a valid Content-Length header is required",
            }})
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            return None, (413, {"error": {
                "type": "PayloadTooLarge",
                "message": f"request body exceeds {MAX_BODY_BYTES} bytes",
            }})
        raw = self.rfile.read(length)
        record = getattr(self.server, "record_wire_bytes", None)
        if record is not None:
            record("in", len(raw))
        try:
            return json.loads(raw or b"null"), None
        except json.JSONDecodeError as error:
            return None, (400, {"error": {
                "type": "InvalidJSON", "message": str(error),
            }})

    def _send_error(self, error: Exception) -> None:
        """One failed request's response: status, error body, Retry-After.

        Admission rejections (and anything else carrying a ``retry_after``
        attribute) get the standard ``Retry-After`` header so well-behaved
        clients back off instead of hammering an overloaded server.
        """
        retry_after = getattr(error, "retry_after", None)
        self._send_json(status_for(error), error_body(error),
                        retry_after=retry_after)

    def _send_json(self, status: int, payload: Dict[str, Any], *,
                   retry_after: Optional[float] = None) -> None:
        with span("serialize"):
            body = json.dumps(payload).encode("utf-8")
            self._send_body(status, body, "application/json",
                            retry_after=retry_after)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        with span("serialize"):
            self._send_body(status, text.encode("utf-8"), content_type)

    def _send_body(self, status: int, body: bytes, content_type: str, *,
                   retry_after: Optional[float] = None) -> None:
        self._last_status = status
        record = getattr(self.server, "record_wire_bytes", None)
        if record is not None:
            record("out", len(body))
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            # HTTP wants delta-seconds as a non-negative integer; round up
            # so "0.4s" does not become an immediate (pointless) retry.
            self.send_header("Retry-After", str(max(1, int(-(-retry_after // 1)))))
        trace = current_trace()
        if trace is not None:
            self.send_header("X-Trace-Id", trace.trace_id)
        if self.close_connection:
            # Framing-error paths set close_connection; tell the client so
            # it does not reuse a socket we are about to shut.
            self.send_header("Connection", "close")
        self.end_headers()
        drip = getattr(self, "_drip", None)
        if drip is not None and body:
            # A slow-drip fault: the body leaves in small chunks with the
            # fault's latency spread across the gaps — a pathologically
            # slow peer, as seen by the client's socket reads.  Each pause
            # precedes its chunk so the full latency lands before the last
            # byte: the client's read blocks for at least ``drip.latency``.
            chunks = max(2, min(8, len(body)))
            pause = drip.latency / chunks if drip.latency else 0.0
            size = -(-len(body) // chunks)
            for start in range(0, len(body), size):
                if pause:
                    time.sleep(pause)
                self.wfile.write(body[start:start + size])
                self.wfile.flush()
            return
        self.wfile.write(body)

    # -- logging ------------------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        if not self.quiet:
            super().log_message(format, *args)


class SemTreeServer(ThreadingHTTPServer):
    """The process-level front end: one app, one listening socket.

    Parameters
    ----------
    app:
        The app to expose: a full :class:`ServerApp`, a
        :class:`~repro.server.shard.ShardApp` (one partition's scan
        endpoints) or a :class:`~repro.coordinator.app.CoordinatorApp`.
        Any object exposing ``post_routes()`` / ``get_routes()`` /
        ``close(checkpoint=...)`` binds.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back from
        :attr:`bound_port` — this is what the tests and benchmarks do).
    quiet:
        Suppress the stdlib per-request log lines (on by default).

    request_timeout:
        Per-request socket timeout in seconds (see ``_Handler.timeout``);
        it bounds stalled readers *and* how long shutdown can wait on an
        idle keep-alive connection.
    fault_plan:
        Optional fault-injection plan for chaos runs (defaults to whatever
        ``$REPRO_FAULTS`` carries, usually nothing); see :mod:`repro.faults`.

    Use :meth:`serve_background` for an in-process server (tests, examples,
    benchmarks) and ``serve_forever()`` on the main thread for a real
    deployment (:mod:`repro.server.__main__` does the latter, with signal
    handlers for graceful shutdown).
    """

    # Handler threads must be non-daemon: ThreadingMixIn only *tracks*
    # non-daemon threads (socketserver._Threads.append skips daemon ones),
    # and close() relies on server_close() joining them so in-flight
    # requests drain before the app is torn down beneath them.
    daemon_threads = False

    def __init__(self, app: ServerApp, *, host: str = "127.0.0.1", port: int = 0,
                 quiet: bool = True, request_timeout: float = 30.0,
                 fault_plan: Optional[FaultPlan] = None):
        # Chaos runs poison subprocess servers through $REPRO_FAULTS; an
        # explicitly passed plan (tests) wins over the environment.
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        handler = type("_BoundHandler", (_Handler,), {
            "app": app, "quiet": quiet, "timeout": request_timeout,
            "fault_plan": fault_plan,
        })
        super().__init__((host, port), handler)
        self.app = app
        self.fault_plan = fault_plan
        self._serve_thread: Optional[threading.Thread] = None
        self.draining = False
        self._handlers_lock = threading.Lock()
        self._live_handlers: set = set()
        self._wire_lock = threading.Lock()
        self._wire_bytes: Dict[str, int] = {"in": 0, "out": 0}
        registry = getattr(app, "registry", None)
        if registry is not None:
            obs_export.bind_wire_bytes(registry, self.wire_bytes)

    # -- wire accounting (fed by _Handler) ----------------------------------------------

    def record_wire_bytes(self, direction: str, count: int) -> None:
        with self._wire_lock:
            self._wire_bytes[direction] += count

    def wire_bytes(self) -> Dict[str, int]:
        """HTTP body bytes moved so far, keyed ``in`` / ``out``."""
        with self._wire_lock:
            return dict(self._wire_bytes)

    # -- connection tracking (see _Handler.handle) --------------------------------------

    def track_handler(self, handler: BaseHTTPRequestHandler) -> None:
        with self._handlers_lock:
            self._live_handlers.add(handler)

    def untrack_handler(self, handler: BaseHTTPRequestHandler) -> None:
        with self._handlers_lock:
            self._live_handlers.discard(handler)

    def _close_idle_connections(self) -> None:
        """Unblock handler threads parked on idle keep-alive connections.

        A handler that is mid-request (``_busy``) is left alone — it drains
        normally and closes its connection afterwards because ``draining``
        is set.  Idle handlers are blocked reading a request line that may
        never come; shutting their socket read side makes that read return
        EOF immediately.  The whole sweep runs under the handlers lock, the
        same lock a handler takes to flip idle→busy when a request line
        arrives — so a request either wins the race (marked busy, drained)
        or loses it (socket shut before the app ever sees it); it is never
        aborted mid-execution.
        """
        with self._handlers_lock:
            for handler in self._live_handlers:
                if handler._busy:
                    continue
                try:
                    handler.connection.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass  # already closed by the client

    @property
    def bound_port(self) -> int:
        """The port actually bound (resolves ``port=0``)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host = self.server_address[0]
        return f"http://{host}:{self.bound_port}"

    # -- lifecycle ----------------------------------------------------------------------

    def serve_background(self) -> "SemTreeServer":
        """Serve on a daemon thread; returns once the socket is accepting."""
        if self._serve_thread is None or not self._serve_thread.is_alive():
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="semtree-http", daemon=True
            )
            self._serve_thread.start()
        return self

    def close(self, *, checkpoint: bool | None = None) -> Optional[int]:
        """Stop accepting, drain, shut the app down (checkpoint-on-exit).

        Returns the checkpointed ``wal_seq`` (see :meth:`ServerApp.close`).
        """
        self.draining = True
        if self._serve_thread is not None:
            # shutdown() blocks until serve_forever() exits, so only call it
            # when the serve loop is actually running on our thread.
            self.shutdown()
            self._serve_thread.join()
            self._serve_thread = None
        # Idle keep-alive connections are force-closed (their handler
        # threads would otherwise block until the socket timeout); busy ones
        # drain.  server_close() then joins every handler thread (tracked
        # because daemon_threads is False), so accepted requests complete
        # fully before the app — engine, compactor, WAL — is torn down
        # beneath them.
        self._close_idle_connections()
        self.server_close()
        return self.app.close(checkpoint=checkpoint)

    def __enter__(self) -> "SemTreeServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
