"""Tests for the LRU + TTL result cache and its generation-based invalidation."""

import pytest

from repro.errors import QueryError
from repro.service import ResultCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get(("a",), generation=1) is None
        cache.put(("a",), [1, 2, 3], generation=1)
        assert cache.get(("a",), generation=1) == [1, 2, 3]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(QueryError):
            ResultCache(capacity=0)
        with pytest.raises(QueryError):
            ResultCache(ttl=-1.0)

    def test_clear_keeps_counters(self):
        cache = ResultCache(capacity=4)
        cache.put(("a",), 1, generation=0)
        cache.get(("a",), generation=0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1


class TestLru:
    def test_capacity_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put(("a",), 1, generation=0)
        cache.put(("b",), 2, generation=0)
        cache.get(("a",), generation=0)   # refresh "a"
        cache.put(("c",), 3, generation=0)  # evicts "b"
        assert cache.get(("b",), generation=0) is None
        assert cache.get(("a",), generation=0) == 1
        assert cache.get(("c",), generation=0) == 3
        assert cache.stats.evictions == 1


class TestTtl:
    def test_entries_expire(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl=10.0, clock=clock)
        cache.put(("a",), 1, generation=0)
        clock.advance(9.9)
        assert cache.get(("a",), generation=0) == 1
        clock.advance(0.2)
        assert cache.get(("a",), generation=0) is None
        assert cache.stats.expirations == 1

    def test_no_ttl_means_no_expiry(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, clock=clock)
        cache.put(("a",), 1, generation=0)
        clock.advance(1e9)
        assert cache.get(("a",), generation=0) == 1


class TestGenerationInvalidation:
    def test_stale_generation_is_a_miss(self):
        cache = ResultCache(capacity=4)
        cache.put(("a",), "old", generation=1)
        assert cache.get(("a",), generation=2) is None
        assert cache.stats.invalidations == 1
        # the stale entry is gone, a fresh one can be stored
        cache.put(("a",), "new", generation=2)
        assert cache.get(("a",), generation=2) == "new"

    def test_current_generation_still_hits(self):
        cache = ResultCache(capacity=4)
        cache.put(("a",), "value", generation=7)
        assert cache.get(("a",), generation=7) == "value"
        assert cache.stats.invalidations == 0


class TestSegmentedAdmission:
    """SLRU: probationary admission, promotion on hit, scan resistance."""

    def test_first_hit_promotes_into_the_protected_segment(self):
        cache = ResultCache(capacity=4, segmented=True)
        cache.put(("a",), 1, generation=0)
        assert cache.stats.protected_size == 0
        cache.get(("a",), generation=0)
        stats = cache.stats
        assert stats.promotions == 1
        assert stats.protected_size == 1

    def test_one_pass_scan_cannot_evict_the_hot_set(self):
        cache = ResultCache(capacity=4, segmented=True, protected_fraction=0.5)
        cache.put(("hot1",), 1, generation=0)
        cache.put(("hot2",), 2, generation=0)
        cache.get(("hot1",), generation=0)  # promoted
        cache.get(("hot2",), generation=0)  # promoted
        for index in range(20):             # a long one-hit-wonder scan
            cache.put((f"scan{index}",), index, generation=0)
        assert cache.get(("hot1",), generation=0) == 1
        assert cache.get(("hot2",), generation=0) == 2
        assert cache.stats.evictions >= 18

    def test_plain_lru_is_scanned_out_for_contrast(self):
        cache = ResultCache(capacity=4, segmented=False)
        cache.put(("hot",), 1, generation=0)
        cache.get(("hot",), generation=0)
        for index in range(4):
            cache.put((f"scan{index}",), index, generation=0)
        assert cache.get(("hot",), generation=0) is None

    def test_protected_overflow_demotes_not_evicts(self):
        cache = ResultCache(capacity=4, segmented=True, protected_fraction=0.3)
        # protected capacity is max(1, round(4 * 0.3)) == 1
        cache.put(("a",), 1, generation=0)
        cache.put(("b",), 2, generation=0)
        cache.get(("a",), generation=0)   # a -> protected
        cache.get(("b",), generation=0)   # b -> protected, a demoted back
        stats = cache.stats
        assert stats.protected_size == 1
        assert stats.evictions == 0
        assert cache.get(("a",), generation=0) == 1  # survived as probationary

    def test_update_of_a_protected_key_stays_protected(self):
        cache = ResultCache(capacity=4, segmented=True)
        cache.put(("a",), 1, generation=0)
        cache.get(("a",), generation=0)
        cache.put(("a",), 99, generation=0)
        stats = cache.stats
        assert stats.protected_size == 1
        assert cache.get(("a",), generation=0) == 99

    def test_generation_invalidation_reaches_the_protected_segment(self):
        cache = ResultCache(capacity=4, segmented=True)
        cache.put(("a",), 1, generation=0)
        cache.get(("a",), generation=0)
        assert cache.get(("a",), generation=1) is None
        assert cache.stats.invalidations == 1
        assert cache.stats.protected_size == 0

    def test_capacity_bound_spans_both_segments(self):
        cache = ResultCache(capacity=3, segmented=True, protected_fraction=0.5)
        for index in range(3):
            cache.put((f"k{index}",), index, generation=0)
            cache.get((f"k{index}",), generation=0)
        cache.put(("k3",), 3, generation=0)
        assert len(cache) == 3

    def test_invalid_protected_fraction_rejected(self):
        with pytest.raises(QueryError):
            ResultCache(capacity=4, segmented=True, protected_fraction=0.0)
        with pytest.raises(QueryError):
            ResultCache(capacity=4, segmented=True, protected_fraction=1.0)

    def test_eviction_counter_is_exposed(self):
        cache = ResultCache(capacity=2, segmented=True)
        for index in range(5):
            cache.put((f"k{index}",), index, generation=0)
        assert cache.stats.evictions == 3

    def test_small_segmented_cache_still_admits_new_keys(self):
        """Regression: the protected segment must never swallow the whole
        capacity, or every new admission would evict itself immediately."""
        cache = ResultCache(capacity=2, segmented=True)  # default fraction 0.8
        cache.put(("a",), 1, generation=0)
        cache.get(("a",), generation=0)  # a -> protected
        cache.put(("b",), 2, generation=0)
        assert cache.get(("b",), generation=0) == 2
        cache.put(("c",), 3, generation=0)
        assert cache.get(("c",), generation=0) == 3

    def test_capacity_one_segmented_degenerates_to_lru(self):
        cache = ResultCache(capacity=1, segmented=True)
        cache.put(("a",), 1, generation=0)
        assert cache.get(("a",), generation=0) == 1
        cache.put(("b",), 2, generation=0)
        assert cache.get(("b",), generation=0) == 2
        assert len(cache) == 1
