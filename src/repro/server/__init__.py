"""The process-level network front end over the serving stack.

Everything below this package runs in one Python process; ``repro.server``
is the layer that puts a socket in front of it, so the index can serve
clients that are not the process that built it:

* :mod:`repro.server.schemas` — wire request/response schemas: typed
  validation of query/insert payloads into :class:`QuerySpec` /
  :class:`Triple`, result rendering, structured JSON errors;
* :mod:`repro.server.app` — :class:`ServerApp`, the transport-free endpoint
  logic: queries through :class:`~repro.service.engine.QueryEngine`
  (batched, cached, deadline-bounded), inserts through
  :class:`~repro.ingest.ingesting.IngestingIndex` (WAL + delta), the
  unified ``/v1/metrics`` payload, graceful close with
  checkpoint-on-exit;
* :mod:`repro.server.http` — :class:`SemTreeServer`, a
  ``ThreadingHTTPServer`` binding one app to a host/port;
* :mod:`repro.server.bootstrap` — recovering a servable index (and the
  semantic distance) from a checkpoint snapshot + WAL on disk;
* :mod:`repro.server.__main__` — the ``python -m repro.server`` CLI.

The HTTP client lives with the other workload drivers:
:class:`repro.workloads.ServerClient`.  See ``docs/server.md`` for the API
reference and ``docs/architecture.md`` for where this layer sits.
"""

from repro.server.app import ServerApp
from repro.server.bootstrap import (derive_distance, harvest_triples, load_shard,
                                    recover_index)
from repro.server.http import SemTreeServer
from repro.server.schemas import (parse_insert_request, parse_query_request,
                                  parse_shard_scan_request, parse_triple,
                                  render_result)
from repro.server.shard import ShardApp

__all__ = [
    "ServerApp",
    "ShardApp",
    "SemTreeServer",
    "derive_distance",
    "harvest_triples",
    "recover_index",
    "load_shard",
    "parse_triple",
    "parse_query_request",
    "parse_insert_request",
    "parse_shard_scan_request",
    "render_result",
]
