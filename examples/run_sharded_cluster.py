"""Launch a real sharded cluster: N shard processes + one coordinator.

The walkthrough behind ``docs/cluster.md``:

1. build a multi-partition requirements index, persist the checkpoint
   snapshot every process boots from (vocabulary hints included, so each
   process rebuilds the exact same semantic distance);
2. spawn one ``python -m repro.server --shard Pk`` subprocess per
   data-bearing partition, then one ``python -m repro.coordinator``
   subprocess wired to their URLs;
3. drive the coordinator with the stdlib client — single, batched and
   range queries — and verify every answer equals the in-process
   sequential search (the correctness oracle);
4. kill one shard mid-service and show the structured partial-failure
   error a coordinator returns instead of a silently partial answer;
5. restart the shard and show exactness restored.

Run with::

    PYTHONPATH=src python examples/run_sharded_cluster.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.coordinator import (launch_coordinator, launch_shard, launch_shards,
                               shutdown_processes)
from repro.core import SemTreeConfig, SemTreeIndex
from repro.errors import ServerError
from repro.ingest import IngestingIndex
from repro.requirements import (GeneratorConfig, RequirementsGenerator,
                                build_requirement_distance,
                                build_requirement_vocabularies)
from repro.server.bootstrap import vocabulary_hints
from repro.service.engine import QueryEngine
from repro.service.planner import QuerySpec
from repro.workloads import ServerClient


def build_and_checkpoint(workdir: Path):
    """A multi-partition corpus index, checkpointed for the fleet to boot from."""
    config = GeneratorConfig(
        documents=6, requirements_per_document=5, sentences_per_requirement=3,
        actors=12, inconsistency_rate=0.25, restatement_rate=0.25, seed=41,
    )
    corpus = RequirementsGenerator(config).generate()
    distance = build_requirement_distance(build_requirement_vocabularies(
        corpus.actor_names, corpus.parameter_values
    ))
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=3, bucket_size=4, max_partitions=4, partition_capacity=24,
    ))
    for document in corpus.documents:
        index.add_document(document.to_rdf_document())
    index.build()
    triples = list(dict.fromkeys(corpus.all_triples()))

    actors, parameters = vocabulary_hints(triples)
    with IngestingIndex(index, workdir / "wal.jsonl",
                        vocabulary_hints={"actors": actors,
                                          "parameters": parameters}) as live:
        live.checkpoint(workdir / "snapshot.json")
    return index, triples


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="semtree-sharded-"))
    print(f"== building the corpus index (workdir: {workdir})")
    index, triples = build_and_checkpoint(workdir)
    snapshot = workdir / "snapshot.json"
    partitions = [p.partition_id for p in index.tree.partitions if p.point_count > 0]
    print(f"   {len(index)} points across partitions "
          f"{', '.join(p.partition_id for p in index.tree.partitions)} "
          f"(data-bearing: {', '.join(partitions)})")

    fleet = []
    try:
        print(f"== launching {len(partitions)} shard processes")
        shards = launch_shards(snapshot, partitions)
        fleet.extend(shards)
        for shard in shards:
            print(f"   shard {shard.partition_id}: {shard.url} "
                  f"(pid {shard.process.pid})")

        print("== launching the coordinator")
        coordinator = launch_coordinator(
            snapshot, {shard.partition_id: shard.url for shard in shards}
        )
        fleet.append(coordinator)
        print(f"   coordinator: {coordinator.url} (pid {coordinator.process.pid})")

        client = ServerClient(coordinator.url)
        oracle = QueryEngine(index, workers=1)

        print("== mixed workload vs the sequential oracle")
        checked = 0
        for triple in triples[:10]:
            wire = client.knn(triple, 4)
            want = oracle.execute_sequential([QuerySpec.k_nearest(triple, 4)])[0]
            assert [round(m["distance"], 12) for m in wire["matches"]] == \
                   [round(m.distance, 12) for m in want.matches]
            wire = client.range(triple, 0.2)
            want = oracle.execute_sequential([QuerySpec.range_query(triple, 0.2)])[0]
            assert sorted(round(m["distance"], 12) for m in wire["matches"]) == \
                   sorted(round(m.distance, 12) for m in want.matches)
            checked += 1
        print(f"   {checked} k-NN + {checked} range queries: distances identical")

        metrics = client.metrics()
        fan_out = metrics["shards"]["fan_out_mean"]
        print(f"   mean fan-out {fan_out:.2f} scans/query over "
              f"{metrics['shards']['partitions']} partitions")

        print("== killing one shard mid-service")
        victim = shards[0]
        victim.kill()
        try:
            client.knn(triples[11], 5)
            raise AssertionError("a lost shard must fail the query")
        except ServerError as error:
            print(f"   structured failure: {error.kind} (HTTP {error.status}): "
                  f"{str(error)[:80]}...")

        print("== restarting the shard and healing the topology")
        replacement = launch_shard(snapshot, victim.partition_id)
        fleet.append(replacement)
        # A fresh coordinator picks up the healed topology (a production
        # deployment would update service discovery instead).
        healed = {shard.partition_id: shard.url for shard in shards[1:]}
        healed[replacement.partition_id] = replacement.url
        coordinator2 = launch_coordinator(snapshot, healed)
        fleet.append(coordinator2)
        client2 = ServerClient(coordinator2.url)
        wire = client2.knn(triples[11], 5)
        want = oracle.execute_sequential([QuerySpec.k_nearest(triples[11], 5)])[0]
        assert [round(m["distance"], 12) for m in wire["matches"]] == \
               [round(m.distance, 12) for m in want.matches]
        print("   exactness restored")
        oracle.close()
    finally:
        print("== terminating the fleet")
        shutdown_processes(fleet)
    print("done.")


if __name__ == "__main__":
    main()
