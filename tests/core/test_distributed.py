"""Tests for the distributed SemTree (insertion, build-partition, k-NN, range)."""

import random

import pytest

from repro.baselines import LinearScanIndex
from repro.cluster import SimulatedCluster
from repro.core import DistributedSemTree, LabeledPoint, SemTreeConfig
from repro.core.stats import distributed_stats
from repro.errors import IndexError_, PartitionError, QueryError


def make_tree(max_partitions=4, bucket_size=8, partition_capacity=32, dimensions=2,
              cluster=None):
    config = SemTreeConfig(dimensions=dimensions, bucket_size=bucket_size,
                           max_partitions=max_partitions,
                           partition_capacity=partition_capacity)
    return DistributedSemTree(config, cluster=cluster)


class TestConstruction:
    def test_starts_with_a_single_root_partition(self):
        tree = make_tree()
        assert tree.partition_count == 1
        assert tree.root_partition.partition_id == "P0"
        assert len(tree) == 0

    def test_partition_lookup(self):
        tree = make_tree()
        assert tree.partition("P0") is tree.root_partition
        with pytest.raises(PartitionError):
            tree.partition("P9")

    def test_default_cluster_sized_to_max_partitions(self):
        tree = make_tree(max_partitions=5)
        assert tree.cluster.node_count == 5


class TestInsertion:
    def test_insert_wrong_dimensionality(self):
        tree = make_tree(dimensions=2)
        with pytest.raises(IndexError_):
            tree.insert(LabeledPoint.of([0.1]))

    def test_points_preserved(self, uniform_points_2d):
        tree = make_tree()
        tree.insert_all(uniform_points_2d)
        assert len(tree) == len(uniform_points_2d)
        assert sorted(p.label for p in tree.points()) == sorted(
            p.label for p in uniform_points_2d
        )

    def test_single_partition_never_spills(self, uniform_points_2d):
        tree = make_tree(max_partitions=1, partition_capacity=32)
        tree.insert_all(uniform_points_2d)
        assert tree.partition_count == 1
        assert tree.cluster.clock.messages == 0

    def test_build_partition_triggered_by_capacity(self, uniform_points_2d):
        tree = make_tree(max_partitions=4, partition_capacity=32)
        tree.insert_all(uniform_points_2d)
        assert tree.partition_count == 4
        stats = distributed_stats(tree)
        assert stats["points"] == len(uniform_points_2d)
        # the root partition becomes routing-only once its subtrees moved out
        assert tree.root_partition.is_routing_only

    def test_partition_count_never_exceeds_max(self, uniform_points_2d):
        for max_partitions in (1, 2, 3, 5, 9):
            tree = make_tree(max_partitions=max_partitions, partition_capacity=32)
            tree.insert_all(uniform_points_2d)
            assert tree.partition_count <= max_partitions

    def test_points_distributed_across_partitions(self, uniform_points_2d):
        tree = make_tree(max_partitions=5, partition_capacity=32)
        tree.insert_all(uniform_points_2d)
        data_partitions = [p for p in tree.partitions if p.point_count > 0]
        assert len(data_partitions) >= 2
        assert sum(p.point_count for p in data_partitions) == len(uniform_points_2d)

    def test_remote_insertion_exchanges_messages(self, uniform_points_2d):
        tree = make_tree(max_partitions=3, partition_capacity=32)
        tree.insert_all(uniform_points_2d)
        assert tree.cluster.clock.messages > 0

    def test_node_storage_accounting_matches_partitions(self, uniform_points_2d):
        cluster = SimulatedCluster(node_count=4, node_capacity=10_000)
        tree = make_tree(max_partitions=4, partition_capacity=32, cluster=cluster)
        tree.insert_all(uniform_points_2d)
        stored = sum(node.stored_points for node in cluster.nodes)
        assert stored == len(uniform_points_2d)


class TestBuildPartition:
    def test_no_op_when_root_is_still_a_leaf(self):
        tree = make_tree(max_partitions=4)
        tree.insert(LabeledPoint.of([0.5, 0.5]))
        assert tree.build_partition(tree.root_partition) == []

    def test_no_op_without_spare_partitions(self, uniform_points_2d):
        tree = make_tree(max_partitions=1)
        tree.insert_all(uniform_points_2d[:50])
        assert tree.build_partition(tree.root_partition) == []

    def test_explicit_build_partition_moves_subtrees(self, uniform_points_2d):
        tree = make_tree(max_partitions=3, partition_capacity=10_000)
        tree.insert_all(uniform_points_2d[:100])
        assert tree.partition_count == 1
        created = tree.build_partition(tree.root_partition)
        assert len(created) == 2
        assert tree.root_partition.is_routing_only
        assert sorted(p.label for p in tree.points()) == sorted(
            p.label for p in uniform_points_2d[:100]
        )

    def test_created_partitions_link_back_via_remote_children(self, uniform_points_2d):
        tree = make_tree(max_partitions=3, partition_capacity=10_000)
        tree.insert_all(uniform_points_2d[:100])
        created = set(tree.build_partition(tree.root_partition))
        pointers = {rc.partition_id for rc in tree.root_partition.remote_children()}
        assert pointers == created


class TestDistributedQueries:
    @pytest.mark.parametrize("max_partitions", [1, 3, 5])
    def test_knn_matches_linear_scan(self, uniform_points_2d, max_partitions):
        tree = make_tree(max_partitions=max_partitions, partition_capacity=32)
        tree.insert_all(uniform_points_2d)
        scan = LinearScanIndex(uniform_points_2d)
        rng = random.Random(3)
        for _ in range(10):
            query = LabeledPoint.of([rng.random(), rng.random()])
            expected = [n.distance for n in scan.k_nearest(query, 5)]
            actual = [n.distance for n in tree.k_nearest(query, 5)]
            assert actual == pytest.approx(expected)

    @pytest.mark.parametrize("max_partitions", [1, 3, 5])
    def test_range_matches_linear_scan(self, uniform_points_2d, max_partitions):
        tree = make_tree(max_partitions=max_partitions, partition_capacity=32)
        tree.insert_all(uniform_points_2d)
        scan = LinearScanIndex(uniform_points_2d)
        rng = random.Random(4)
        for _ in range(10):
            query = LabeledPoint.of([rng.random(), rng.random()])
            radius = rng.uniform(0.05, 0.25)
            expected = {n.point for n in scan.range_query(query, radius)}
            actual = {n.point for n in tree.range_query(query, radius)}
            assert actual == expected

    def test_query_dimension_checked(self, uniform_points_2d):
        tree = make_tree()
        tree.insert_all(uniform_points_2d[:20])
        with pytest.raises(QueryError):
            tree.k_nearest(LabeledPoint.of([0.5]), 3)
        with pytest.raises(QueryError):
            tree.range_query(LabeledPoint.of([0.5]), 0.1)

    def test_negative_radius_rejected(self, uniform_points_2d):
        tree = make_tree()
        tree.insert_all(uniform_points_2d[:20])
        with pytest.raises(QueryError):
            tree.range_query(LabeledPoint.of([0.5, 0.5]), -1.0)

    def test_knn_state_tracks_partitions_visited(self, uniform_points_2d):
        tree = make_tree(max_partitions=5, partition_capacity=32)
        tree.insert_all(uniform_points_2d)
        state = tree.k_nearest_state(LabeledPoint.of([0.5, 0.5]), 5)
        assert state.partitions_visited >= 2
        assert state.nodes_visited > 0

    def test_range_state_counters(self, uniform_points_2d):
        tree = make_tree(max_partitions=5, partition_capacity=32)
        tree.insert_all(uniform_points_2d)
        state = tree.range_query_state(LabeledPoint.of([0.5, 0.5]), 0.2)
        assert state.partitions_visited >= 1
        assert state.points_examined >= len(state.results)

    def test_queries_charge_simulated_costs(self, uniform_points_2d):
        tree = make_tree(max_partitions=3, partition_capacity=32)
        tree.insert_all(uniform_points_2d)
        tree.cluster.reset_costs()
        tree.k_nearest(LabeledPoint.of([0.5, 0.5]), 3)
        assert tree.cluster.costs().total_work > 0


class TestStatistics:
    def test_statistics_fields(self, uniform_points_2d):
        tree = make_tree(max_partitions=3, partition_capacity=32)
        tree.insert_all(uniform_points_2d)
        stats = tree.statistics()
        assert stats["points"] == len(uniform_points_2d)
        assert stats["partitions"] == tree.partition_count
        assert set(stats["points_per_partition"]) == {p.partition_id for p in tree.partitions}

    def test_distributed_stats_helper(self, uniform_points_2d):
        tree = make_tree(max_partitions=3, partition_capacity=32)
        tree.insert_all(uniform_points_2d)
        stats = distributed_stats(tree)
        assert stats["points"] == len(uniform_points_2d)
        assert stats["leaves"] > 0
        assert stats["data_partition_imbalance"] >= 1.0
