"""The distributed SemTree: a KD-tree whose nodes are spread over partitions.

This module implements the four algorithms of Section III-B of the paper on
top of the simulated cluster:

1. **Distributed insertion** — the insertion starts at the root node of the
   root partition; navigation compares ``P[Sr]`` with ``Sv`` at every routing
   node; when the selected child lives on another partition
   (``Cp != Childp``), a message carrying the point is sent to that
   partition, which continues the insertion locally; a saturated leaf is
   split into two fresh children.
2. **Build partition** — when a partition exhausts its allowed resources and
   spare partitions are available, every local leaf is moved into a newly
   created partition and a direct link (a :class:`RemoteChild` pointer)
   replaces it, leaving the original partition as a routing-only partition.
3. **Distributed k-nearest search** — forward descent to a leaf, then a
   backward visit that explores the sibling subtree only when the splitting
   plane is closer than the current worst neighbour or the result set is
   not yet full; partition crossings exchange request/result messages.
4. **Distributed range search** — when ``|P[SI] - Sv| < D`` both children are
   navigated (in parallel across partitions when the node is an edge node);
   otherwise navigation follows the insertion rule; partial result sets are
   merged on the way back.

Costs are charged to the :class:`~repro.cluster.cluster.SimulatedCluster`:
local work per visited node / examined point to the owning partition,
message latencies to the network.  Wall-clock time is measured separately by
the benchmark harness.

Cross-partition hops go through a
:class:`~repro.cluster.transport.PartitionRouter` (the simulated bus by
default) rather than the cluster object directly, and every partition also
supports *local-only* scans (:meth:`DistributedSemTree.scan_partition_knn` /
``scan_partition_range`` and the underlying :func:`scan_subtree_knn` /
:func:`scan_subtree_range`) — the unit of work a scatter-gather front end
or a shard server executes; see :mod:`repro.cluster.transport`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import SimulatedCluster
from repro.cluster.message import Message, MessageKind
from repro.cluster.transport import PartitionRouter, PartitionScan, SimulatedBusRouter
from repro.core import kernels
from repro.core.config import SemTreeConfig
from repro.core.cost import SearchCost
from repro.core.knn import KSearchState, Neighbour
from repro.core.node import ChildRef, Node, RemoteChild
from repro.core.partition import Partition
from repro.core.point import LabeledPoint, euclidean_distance
from repro.core.splitting import choose_split
from repro.errors import IndexError_, PartitionError, QueryError

__all__ = ["DistributedSemTree", "RangeSearchState", "range_children",
           "scan_subtree_knn", "scan_subtree_range", "subtree_point_count"]


def range_children(node: Node, query: LabeledPoint,
                   radius: float) -> Tuple[ChildRef, ...]:
    """The paper's range navigation rule for one routing node.

    Both children when the query ball straddles the splitting plane
    (``|P[SI] - Sv| < D``), the insertion-rule child otherwise.  The single
    place the rule (and its corruption contract — a routing node with a
    missing child fails loudly, never yields a silently-partial scan) is
    written down: the sequential traversal, the shard-local scan and the
    coordinator's partition pruning all call it, so they can never drift.
    """
    assert node.split_index is not None and node.split_value is not None
    plane_distance = abs(query[node.split_index] - node.split_value)
    if plane_distance < radius:
        children: Tuple[Optional[ChildRef], ...] = (node.left, node.right)
    else:
        children = (node.child_for(query),)
    for child in children:
        if child is None:
            raise IndexError_("routing node with a missing child")
    return children  # type: ignore[return-value]


# -- local-only subtree scans (the shard/scatter-gather unit of work) ----------------------

def scan_subtree_knn(root: Node, state: KSearchState,
                     kernel: str = kernels.DEFAULT_SCAN_KERNEL) -> KSearchState:
    """K-search over the *local* nodes below ``root``; remote links are skipped.

    Runs the paper's forward descent + backward visit with the usual pruning
    rules, but never crosses a :class:`RemoteChild` — the caller (a shard
    server, or a scatter-gather front end) owns exactly one partition's
    subtree and other partitions are scanned independently.  The state's
    result set therefore holds the partition-local top-k, whose union over
    all partitions contains the global top-k.
    """
    # Stack entries: (node, pending_far_child) — ``None`` means forward phase.
    stack: List[Tuple[Node, Optional[ChildRef]]] = [(root, None)]
    while stack:
        node, pending_far = stack.pop()
        if pending_far is not None:
            assert node.split_index is not None and node.split_value is not None
            if isinstance(pending_far, Node) and state.must_visit_other_side(
                node.split_index, node.split_value
            ):
                stack.append((pending_far, None))
            continue
        state.nodes_visited += 1
        if node.is_leaf:
            kernels.knn_scan_node(state, node, kernel)
            continue
        near_child = node.child_for(state.query)
        far_child = node.other_child(near_child)
        stack.append((node, far_child))
        if isinstance(near_child, Node):
            stack.append((near_child, None))
    return state


def scan_subtree_range(root: Node, state: "RangeSearchState",
                       kernel: str = kernels.DEFAULT_SCAN_KERNEL) -> "RangeSearchState":
    """Range search over the *local* nodes below ``root``; remote links skipped.

    Applies the same navigation rule as the sequential search (both children
    when the query ball straddles the splitting plane) within one
    partition's subtree.
    """
    stack: List[Node] = [root]
    while stack:
        node = stack.pop()
        state.nodes_visited += 1
        if node.is_leaf:
            state.examine_bucket(node, kernel)
            continue
        for child in range_children(node, state.query, state.radius):
            if isinstance(child, Node):
                stack.append(child)
    return state


def subtree_point_count(root: Node) -> int:
    """Number of points stored in the local leaves below ``root``.

    Shared by the build-partition procedure and shard boot, so the shard's
    reported point count can never drift from the tree's own accounting.
    """
    total = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            total += len(node.bucket)
            continue
        for child in (node.left, node.right):
            if isinstance(child, Node):
                stack.append(child)
    return total


class RangeSearchState:
    """Mutable state of one distributed range search (results + counters)."""

    def __init__(self, query: LabeledPoint, radius: float):
        if radius < 0:
            raise QueryError("the range distance D must be non-negative")
        self.query = query
        self.radius = radius
        self.results: List[Neighbour] = []
        self.nodes_visited = 0
        self.points_examined = 0
        self.partitions_visited = 0
        self.cost = SearchCost()
        self.visited_partition_ids: List[str] = []
        self._visited_partition_set: set[str] = set()
        self._query_array = None

    def query_array(self) -> np.ndarray:
        """The query coordinates as a NumPy vector, built once per search."""
        if self._query_array is None:
            self._query_array = np.asarray(self.query.coordinates, dtype=np.float64)
        return self._query_array

    def note_partition(self, partition_id: str) -> None:
        """Record the identity of a partition the search entered (load metrics).

        Membership is checked against a set; ``visited_partition_ids`` keeps
        first-seen order for the serving layer's per-partition load metrics.
        """
        if partition_id not in self._visited_partition_set:
            self._visited_partition_set.add(partition_id)
            self.visited_partition_ids.append(partition_id)

    def examine_point(self, point: LabeledPoint) -> bool:
        """Test one stored point against the ball; returns True when it is a result.

        The inclusion rule is ``distance <= radius``, inclusive — the
        delta-segment scan of :mod:`repro.ingest.delta` applies the same
        rule, so both sides of a merged read agree on boundary points.
        """
        self.points_examined += 1
        self.cost.distance_computations += 1
        distance = euclidean_distance(self.query, point)
        if distance <= self.radius:
            self.results.append(Neighbour(point, distance))
            return True
        return False

    def examine_bucket(self, node: Node, kernel: str = kernels.DEFAULT_SCAN_KERNEL) -> int:
        """Scan one leaf's bucket with the configured kernel; returns hits.

        The ``"numpy"`` kernel computes every bucket distance in one
        vectorized pass and bulk-updates ``points_examined``; the
        ``"scalar"`` kernel walks :meth:`examine_point` per point.
        """
        found, examined = kernels.range_scan_node(self.query, self.radius, node, kernel,
                                                  query_array=self.query_array(),
                                                  cost=self.cost)
        self.points_examined += examined
        self.results.extend(found)
        return len(found)

    def sorted_results(self) -> List[Neighbour]:
        """The collected results, closest first."""
        return sorted(self.results, key=lambda neighbour: neighbour.distance)


class DistributedSemTree:
    """A KD-tree distributed over the partitions of a simulated cluster.

    Parameters
    ----------
    config:
        Index configuration (dimensions, bucket size, number of partitions,
        capacity policy, cost model).
    cluster:
        The simulated cluster hosting the partitions.  When omitted, a
        cluster with as many nodes as ``config.max_partitions`` is created.
    router:
        The :class:`~repro.cluster.transport.PartitionRouter` carrying
        cross-partition hops (defaults to the simulated bus of ``cluster``).
    """

    ROOT_PARTITION_ID = "P0"

    def __init__(self, config: SemTreeConfig, cluster: SimulatedCluster | None = None,
                 router: PartitionRouter | None = None):
        self.config = config
        self.cluster = cluster or SimulatedCluster(node_count=max(config.max_partitions, 1))
        self.router: PartitionRouter = router or SimulatedBusRouter(self.cluster)
        self._partitions: Dict[str, Partition] = {}
        self._partition_counter = itertools.count(1)
        self._size = 0
        root_partition = Partition(self.ROOT_PARTITION_ID, self)
        self._register_partition(root_partition)

    # -- partition management -----------------------------------------------------------

    def _register_partition(self, partition: Partition,
                            preferred_node: str | None = None) -> None:
        self._partitions[partition.partition_id] = partition
        self.cluster.place_partition(
            partition.partition_id, partition.handle_message, preferred_node=preferred_node
        )

    def _new_partition(self, root: Node) -> Partition:
        partition_id = f"P{next(self._partition_counter)}"
        partition = Partition(partition_id, self, root=root)
        self._register_partition(partition)
        if partition.point_count:
            self.cluster.record_points(partition_id, partition.point_count)
        return partition

    @classmethod
    def from_snapshot(cls, config: SemTreeConfig,
                      partition_roots: Sequence[Tuple[str, Node]], *, size: int,
                      cluster: SimulatedCluster | None = None) -> "DistributedSemTree":
        """Rebuild a tree from deserialised partition roots (warm start).

        ``partition_roots`` pairs each partition identifier with its local
        root node, remote links already encoded as
        :class:`~repro.core.node.RemoteChild` pointers.  Partitions are
        placed in the given order, so serialising them in registration order
        reproduces the original deterministic placement.

        Raises
        ------
        PartitionError
            If the root partition ``P0`` is missing from the payload.
        """
        tree = cls(config, cluster=cluster)
        # Drop the empty auto-created root partition; every partition of the
        # snapshot (P0 included) is registered from the payload instead.
        tree.cluster.remove_partition(cls.ROOT_PARTITION_ID)
        tree._partitions.clear()
        highest = 0
        for partition_id, root in partition_roots:
            partition = Partition(partition_id, tree, root=root)
            tree._register_partition(partition)
            if partition.point_count:
                tree.cluster.record_points(partition_id, partition.point_count)
            digits = partition_id.lstrip("P")
            if digits.isdigit():
                highest = max(highest, int(digits))
        if cls.ROOT_PARTITION_ID not in tree._partitions:
            raise PartitionError("a snapshot must contain the root partition "
                                 f"{cls.ROOT_PARTITION_ID!r}")
        tree._partition_counter = itertools.count(highest + 1)
        tree._size = size
        return tree

    @property
    def root_partition(self) -> Partition:
        """The root partition (``P0``), where every operation starts."""
        return self._partitions[self.ROOT_PARTITION_ID]

    def partition(self, partition_id: str) -> Partition:
        """Return a partition by identifier."""
        try:
            return self._partitions[partition_id]
        except KeyError:
            raise PartitionError(f"unknown partition {partition_id!r}") from None

    @property
    def partitions(self) -> List[Partition]:
        """All partitions, ordered by identifier."""
        return [self._partitions[pid] for pid in sorted(self._partitions)]

    @property
    def partition_count(self) -> int:
        """Number of partitions currently in use."""
        return len(self._partitions)

    def __len__(self) -> int:
        return self._size

    # -- insertion -------------------------------------------------------------------------

    def insert(self, point: LabeledPoint) -> None:
        """Insert a point, starting "from the root node of the root partition"."""
        if point.dimensions != self.config.dimensions:
            raise IndexError_(
                f"point has {point.dimensions} dimensions, the index expects "
                f"{self.config.dimensions}"
            )
        self._insert_in_partition(self.root_partition, point)
        self._size += 1

    def insert_all(self, points: Iterable[LabeledPoint]) -> None:
        """Insert many points one by one."""
        for point in points:
            self.insert(point)

    def handle_insert_message(self, partition: Partition, message: Message) -> None:
        """Bus callback: continue an insertion that crossed into ``partition``."""
        self._insert_in_partition(partition, message.payload["point"])

    def _insert_in_partition(self, partition: Partition, point: LabeledPoint) -> None:
        node = partition.root
        depth = self._depth_hint(partition)
        while True:
            self.cluster.charge_work(partition.partition_id, self.config.node_visit_cost)
            if node.is_leaf:
                break
            child = node.child_for(point)
            if isinstance(child, RemoteChild):
                # Cp != Childp: delegate the insertion to the partition
                # hosting the child, via the communication protocol.
                self.router.continue_insert(
                    partition.partition_id, child.partition_id, point
                )
                return
            node = child
            depth += 1

        node.add_to_bucket(point)
        partition.record_stored(1)
        self.cluster.record_points(partition.partition_id, 1)
        self.cluster.charge_work(partition.partition_id, self.config.point_insert_cost)
        if len(node.bucket) > self.config.bucket_size:
            self._split_leaf(partition, node, depth)
        self._maybe_build_partitions(partition)

    def _depth_hint(self, partition: Partition) -> int:
        # The split dimension only needs to cycle; the exact global depth of a
        # partition root is not tracked, so local depth 0 is a sound hint.
        return 0

    def _split_leaf(self, partition: Partition, leaf: Node, depth: int) -> None:
        try:
            decision = choose_split(leaf.bucket, depth, self.config.dimensions,
                                    self.config.split_strategy)
        except IndexError_:
            return  # identical points: keep the oversized bucket
        left = Node(partition_id=partition.partition_id, bucket=list(decision.left_points))
        right = Node(partition_id=partition.partition_id, bucket=list(decision.right_points))
        leaf.convert_to_routing(decision.split_index, decision.split_value, left, right)
        self.cluster.charge_work(
            partition.partition_id,
            self.config.point_visit_cost * (len(decision.left_points) + len(decision.right_points)),
        )

    # -- build partition ----------------------------------------------------------------------

    def _maybe_build_partitions(self, partition: Partition) -> None:
        node_id = self.cluster.node_of_partition(partition.partition_id)
        node_capacity = self.cluster.node(node_id).storage_capacity
        if not partition.is_saturated(self.config, node_capacity):
            return
        if self.partition_count >= self.config.max_partitions:
            return  # no spare compute resources: the partition keeps its data
        self.build_partition(partition)

    def build_partition(self, partition: Partition) -> List[str]:
        """The paper's build-partition procedure.

        Starting from the saturated partition's root, the subtrees holding
        its leaves are moved into newly created partitions and replaced by
        direct links, so that the original partition "is used just for
        routing and others for storing data".  When the partition's leaves
        all hang directly below its root this moves exactly "each leaf node
        of the current partition into a different newly created partition";
        when there are more leaves than spare compute nodes the procedure
        moves the enclosing subtrees instead, which keeps the paper's
        complexity model (the routing partition retains about ``2M - 1``
        nodes and the ``M - 1`` data partitions share the points).

        Returns the identifiers of the partitions created.  The procedure is
        a no-op when the cluster has no spare partitions or the partition's
        root is still a leaf.
        """
        slots = self.config.max_partitions - self.partition_count
        if slots <= 0 or partition.root.is_leaf:
            return []

        frontier = self._spill_frontier(partition, slots)
        created: List[str] = []
        # Move the heaviest subtrees first so any subtree left behind (when
        # the frontier is larger than the available slots) is the smallest.
        frontier.sort(key=lambda entry: -self._subtree_points(entry[2]))
        for parent, side, subtree_root in frontier[:slots]:
            moved_points = self._subtree_points(subtree_root)
            new_partition = self._new_partition(subtree_root)
            created.append(new_partition.partition_id)
            pointer = RemoteChild(new_partition.partition_id)
            if side == "left":
                parent.left = pointer
            else:
                parent.right = pointer
            partition.record_stored(-moved_points)
            if moved_points:
                self.cluster.record_points(partition.partition_id, -moved_points)
            self.router.ship_subtree(
                partition.partition_id, new_partition.partition_id, moved_points
            )
            self.cluster.charge_work(
                partition.partition_id, self.config.point_visit_cost * moved_points
            )
        return created

    def _spill_frontier(self, partition: Partition,
                        slots: int) -> List[Tuple[Node, str, Node]]:
        """Choose the disjoint local subtrees to move out of a saturated partition.

        The frontier starts at the children of the partition root and
        expands the routing node with the most points until it has ``slots``
        entries (or only leaves remain), so the moved subtrees cover every
        local leaf whenever enough compute nodes are available.
        """
        frontier: List[Tuple[Node, str, Node]] = []
        root = partition.root
        for side in ("left", "right"):
            child = getattr(root, side)
            if isinstance(child, Node):
                frontier.append((root, side, child))
        while len(frontier) < slots:
            expandable = [
                entry for entry in frontier
                if entry[2].is_routing
                and isinstance(entry[2].left, Node)
                and isinstance(entry[2].right, Node)
            ]
            if not expandable:
                break
            parent_entry = max(expandable, key=lambda entry: self._subtree_points(entry[2]))
            frontier.remove(parent_entry)
            _, _, node = parent_entry
            frontier.append((node, "left", node.left))    # type: ignore[arg-type]
            frontier.append((node, "right", node.right))  # type: ignore[arg-type]
        return frontier

    @staticmethod
    def _subtree_points(root: Node) -> int:
        """Number of points stored in the local leaves of a subtree."""
        return subtree_point_count(root)

    # -- k-nearest search -----------------------------------------------------------------------

    def k_nearest(self, query: LabeledPoint, k: int) -> List[Neighbour]:
        """Return the ``k`` stored points closest to ``query``, closest first."""
        return self.k_nearest_state(query, k).results.neighbours()

    def k_nearest_state(self, query: LabeledPoint, k: int) -> KSearchState:
        """Run the distributed k-nearest search and return its full state."""
        if query.dimensions != self.config.dimensions:
            raise QueryError(
                f"query has {query.dimensions} dimensions, the index expects "
                f"{self.config.dimensions}"
            )
        state = KSearchState(query=query, k=k)
        state.partitions_visited = 1
        self._knn_traverse(self.root_partition, state)
        return state

    def handle_knn_message(self, partition: Partition, message: Message) -> None:
        """Bus callback: continue a k-search in ``partition`` and send the result back."""
        state: KSearchState = message.payload["state"]
        state.partitions_visited += 1
        self._knn_traverse(partition, state)
        self.router.reply_found(
            MessageKind.KNN_RESULT, partition.partition_id, message.source,
            len(state.results),
        )

    def _knn_traverse(self, partition: Partition, state: KSearchState) -> None:
        """Iterative forward + backward k-search over the nodes of one partition.

        Remote children encountered on the way are delegated to their
        partitions through the message bus (which re-enters this method via
        :meth:`handle_knn_message`).
        """
        state.note_partition(partition.partition_id)
        # Stack entries: (node, pending_far_child) — ``None`` means forward phase.
        stack: List[Tuple[Node, Optional[ChildRef]]] = [(partition.root, None)]
        while stack:
            node, pending_far = stack.pop()
            if pending_far is not None:
                assert node.split_index is not None and node.split_value is not None
                if state.must_visit_other_side(node.split_index, node.split_value):
                    self._knn_expand(partition, pending_far, stack, state)
                continue
            state.nodes_visited += 1
            self.cluster.charge_work(partition.partition_id, self.config.node_visit_cost)
            if node.is_leaf:
                examined = len(node.bucket)
                kernels.knn_scan_node(state, node, self.config.scan_kernel)
                self.cluster.charge_work(
                    partition.partition_id, self.config.point_visit_cost * examined
                )
                continue
            near_child = node.child_for(state.query)
            far_child = node.other_child(near_child)
            stack.append((node, far_child))
            self._knn_expand(partition, near_child, stack, state)

    def _knn_expand(self, partition: Partition, child: ChildRef,
                    stack: List[Tuple[Node, Optional[ChildRef]]],
                    state: KSearchState) -> None:
        """Expand a child reference: push local nodes, delegate remote ones."""
        if isinstance(child, RemoteChild):
            self.router.continue_knn(partition.partition_id, child.partition_id, state)
            return
        stack.append((child, None))

    # -- range search -----------------------------------------------------------------------------

    def range_query(self, query: LabeledPoint, radius: float) -> List[Neighbour]:
        """Return every stored point within ``radius`` of ``query``, closest first."""
        return self.range_query_state(query, radius).sorted_results()

    def range_query_state(self, query: LabeledPoint, radius: float) -> RangeSearchState:
        """Run the distributed range search and return its full state."""
        if query.dimensions != self.config.dimensions:
            raise QueryError(
                f"query has {query.dimensions} dimensions, the index expects "
                f"{self.config.dimensions}"
            )
        state = RangeSearchState(query, radius)
        state.partitions_visited = 1
        self._range_traverse(self.root_partition, state)
        return state

    def handle_range_message(self, partition: Partition, message: Message) -> None:
        """Bus callback: continue a range search in ``partition`` and reply with results."""
        state: RangeSearchState = message.payload["state"]
        state.partitions_visited += 1
        self._range_traverse(partition, state)
        self.router.reply_found(
            MessageKind.RANGE_RESULT, partition.partition_id, message.source,
            len(state.results),
        )

    def _range_traverse(self, partition: Partition, state: RangeSearchState) -> None:
        state.note_partition(partition.partition_id)
        stack: List[Node] = [partition.root]
        while stack:
            node = stack.pop()
            state.nodes_visited += 1
            self.cluster.charge_work(partition.partition_id, self.config.node_visit_cost)
            if node.is_leaf:
                state.examine_bucket(node, self.config.scan_kernel)
                self.cluster.charge_work(
                    partition.partition_id, self.config.point_visit_cost * len(node.bucket)
                )
                continue
            # The query ball may straddle the plane: navigate both children
            # (in parallel across partitions when the node is an edge node).
            for child in range_children(node, state.query, state.radius):
                self._range_expand(partition, child, stack, state)

    def _range_expand(self, partition: Partition, child: ChildRef,
                      stack: List[Node], state: RangeSearchState) -> None:
        if isinstance(child, RemoteChild):
            self.router.continue_range(partition.partition_id, child.partition_id, state)
            return
        stack.append(child)

    # -- whole-partition scans (scatter-gather serving) ---------------------------------------------

    def scan_partition_knn(self, partition_id: str, query: LabeledPoint,
                           k: int) -> KSearchState:
        """The partition-local k-search of one partition (remote links skipped).

        This is the unit of work a scatter-gather front end fans out —
        in-process through :class:`~repro.cluster.transport.SimulatedClusterTransport`,
        or over HTTP when the partition is served by a shard process.  Local
        work is charged to the simulated clock exactly like the guided
        traversal charges it.
        """
        if query.dimensions != self.config.dimensions:
            raise QueryError(
                f"query has {query.dimensions} dimensions, the index expects "
                f"{self.config.dimensions}"
            )
        partition = self.partition(partition_id)
        state = KSearchState(query=query, k=k)
        state.partitions_visited = 1
        state.note_partition(partition_id)
        scan_subtree_knn(partition.root, state, self.config.scan_kernel)
        self._charge_scan(partition_id, state.nodes_visited, state.points_examined)
        return state

    def scan_partition_range(self, partition_id: str, query: LabeledPoint,
                             radius: float) -> RangeSearchState:
        """The partition-local range search of one partition (remote links skipped)."""
        if query.dimensions != self.config.dimensions:
            raise QueryError(
                f"query has {query.dimensions} dimensions, the index expects "
                f"{self.config.dimensions}"
            )
        partition = self.partition(partition_id)
        state = RangeSearchState(query, radius)
        state.partitions_visited = 1
        state.note_partition(partition_id)
        scan_subtree_range(partition.root, state, self.config.scan_kernel)
        self._charge_scan(partition_id, state.nodes_visited, state.points_examined)
        return state

    def _charge_scan(self, partition_id: str, nodes: int, points: int) -> None:
        self.cluster.charge_work(
            partition_id,
            self.config.node_visit_cost * nodes + self.config.point_visit_cost * points,
        )

    def handle_scan_message(self, partition: Partition, message: Message) -> None:
        """Bus callback: run a whole-partition scan and reply with its result.

        The :class:`PartitionScan` travels back inside the request payload
        (the simulated bus is synchronous); the ``SCAN_RESULT`` reply only
        exists so the network cost of shipping the result is accounted.
        """
        payload = message.payload
        if message.kind is MessageKind.SCAN_KNN:
            state = self.scan_partition_knn(
                partition.partition_id, payload["query"], payload["k"]
            )
            neighbours = tuple(state.results.neighbours())
        else:
            state = self.scan_partition_range(
                partition.partition_id, payload["query"], payload["radius"]
            )
            neighbours = tuple(state.sorted_results())
        payload["scan"] = PartitionScan(
            partition_id=partition.partition_id,
            neighbours=neighbours,
            nodes_visited=state.nodes_visited,
            points_examined=state.points_examined,
            cost=state.cost,
        )
        self.router.reply_found(
            MessageKind.SCAN_RESULT, partition.partition_id, message.source,
            len(neighbours),
        )

    # -- introspection ------------------------------------------------------------------------------

    def points(self) -> List[LabeledPoint]:
        """Every stored point, partition by partition."""
        collected: List[LabeledPoint] = []
        for partition in self.partitions:
            for node in partition.local_nodes():
                if node.is_leaf:
                    collected.extend(node.bucket)
        return collected

    def statistics(self) -> Dict[str, object]:
        """Structural statistics used by tests and the benchmark reports."""
        per_partition = {p.partition_id: p.point_count for p in self.partitions}
        routing_only = sum(1 for p in self.partitions if p.is_routing_only)
        return {
            "points": self._size,
            "partitions": self.partition_count,
            "routing_only_partitions": routing_only,
            "points_per_partition": per_partition,
            "nodes": sum(sum(1 for _ in p.local_nodes()) for p in self.partitions),
            "messages": self.cluster.clock.messages,
        }

    def __repr__(self) -> str:
        return (
            f"DistributedSemTree(points={self._size}, partitions={self.partition_count}, "
            f"bucket_size={self.config.bucket_size})"
        )
