"""LRU + TTL result cache with generation-based invalidation.

Entries are keyed on the planner's cache key (embedded coordinates + query
parameters) and tagged with the index *generation* they were computed at
(:attr:`repro.core.semtree.SemTreeIndex.generation`).  Every mutation of the
built index bumps the generation, so a lookup that finds an entry from an
older generation treats it as a miss and drops it — stale k-NN answers are
never served after incremental inserts, without the mutation path having to
know which keys are affected.

Eviction is twofold: least-recently-used beyond ``capacity``, and
time-to-live expiry when a ``ttl`` is configured.  All operations are
guarded by a lock so the cache can be shared by the engine's worker
threads.

Admission is plain LRU by default.  With ``segmented=True`` the cache runs
the SLRU (segmented LRU) policy instead: new entries are admitted into a
*probationary* segment and only promoted into the *protected* segment on
their first hit; the protected segment demotes its LRU entry back to
probation when full, and capacity evictions always take the probationary
LRU first.  A one-pass scan of never-repeated queries therefore churns the
probationary segment only — the working set in the protected segment
survives, which plain LRU cannot guarantee.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional, Tuple

from repro.errors import QueryError

__all__ = ["CacheStats", "ResultCache"]


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Counters of one cache's lifetime (immutable snapshot)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0
    promotions: int = 0
    size: int = 0
    protected_size: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        """Every counter plus the derived readings, snake_case.

        This is the *single* dictionary form of the cache counters: both
        :meth:`repro.service.engine.QueryEngine.statistics` and the server's
        ``/v1/metrics`` payload publish it verbatim, so the two can never
        drift apart (they used to: the engine hand-picked a subset and
        dropped ``protected_size``).
        """
        payload = {field: getattr(self, field) for field in (
            "hits", "misses", "evictions", "expirations", "invalidations",
            "promotions", "size", "protected_size",
        )}
        payload["lookups"] = self.lookups
        payload["hit_rate"] = self.hit_rate
        return payload


class _Entry:
    __slots__ = ("value", "generation", "expires_at")

    def __init__(self, value: Any, generation: int, expires_at: Optional[float]):
        self.value = value
        self.generation = generation
        self.expires_at = expires_at


class ResultCache:
    """A bounded, thread-safe result cache.

    Parameters
    ----------
    capacity:
        Maximum number of entries retained (across both segments when
        segmented).
    ttl:
        Optional time-to-live in seconds; entries older than this are
        expired lazily at lookup time.
    clock:
        Monotonic time source (injectable for tests).
    segmented:
        Turn on SLRU admission (probationary/protected segments).
    protected_fraction:
        Share of ``capacity`` the protected segment may hold (segmented
        mode only).
    """

    def __init__(self, capacity: int = 1024, *, ttl: float | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 segmented: bool = False, protected_fraction: float = 0.8):
        if capacity < 1:
            raise QueryError(f"cache capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise QueryError("the cache TTL must be a positive number of seconds")
        if not 0.0 < protected_fraction < 1.0:
            raise QueryError("protected_fraction must be strictly between 0 and 1")
        self.capacity = capacity
        self.ttl = ttl
        self.segmented = segmented
        # At least one probationary slot must survive, or promoted entries
        # fill the whole cache and every new admission evicts itself.  With
        # capacity 1 the protected segment degenerates to nothing and the
        # cache behaves as plain LRU.
        self.protected_capacity = (
            min(capacity - 1, max(1, round(capacity * protected_fraction)))
            if segmented else 0
        )
        self._clock = clock
        self._lock = threading.Lock()
        # Plain mode uses ``_entries`` alone; segmented mode uses it as the
        # probationary segment with ``_protected`` above it.
        self._entries: "OrderedDict[Tuple[Hashable, ...], _Entry]" = OrderedDict()
        self._protected: "OrderedDict[Tuple[Hashable, ...], _Entry]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0
        self._invalidations = 0
        self._promotions = 0

    # -- lookups -----------------------------------------------------------------------

    def get(self, key: Tuple[Hashable, ...], generation: int) -> Optional[Any]:
        """Return the cached value, or ``None`` on miss/expiry/staleness.

        ``generation`` is the index's current generation; entries written at
        an older generation are dropped and counted as invalidations.
        """
        with self._lock:
            segment = self._entries
            entry = segment.get(key)
            if entry is None and self.segmented:
                segment = self._protected
                entry = segment.get(key)
            if entry is None:
                self._misses += 1
                return None
            if entry.generation != generation:
                del segment[key]
                self._invalidations += 1
                self._misses += 1
                return None
            if entry.expires_at is not None and self._clock() >= entry.expires_at:
                del segment[key]
                self._expirations += 1
                self._misses += 1
                return None
            if segment is self._protected:
                self._protected.move_to_end(key)
            elif self.segmented:
                self._promote(key, entry)
            else:
                self._entries.move_to_end(key)
            self._hits += 1
            return entry.value

    def _promote(self, key: Tuple[Hashable, ...], entry: _Entry) -> None:
        """First hit on a probationary entry: move it into the protected segment."""
        del self._entries[key]
        self._protected[key] = entry
        self._promotions += 1
        while len(self._protected) > self.protected_capacity:
            demoted_key, demoted = self._protected.popitem(last=False)
            # Demotion to probationary MRU, not eviction: the entry gets one
            # more chance before the probationary LRU churn reaches it.
            self._entries[demoted_key] = demoted

    def put(self, key: Tuple[Hashable, ...], value: Any, generation: int) -> None:
        """Store a value computed at ``generation``.

        In segmented mode a *new* key is admitted into the probationary
        segment; updating a key that already earned protection refreshes it
        in place.
        """
        expires_at = self._clock() + self.ttl if self.ttl is not None else None
        entry = _Entry(value, generation, expires_at)
        with self._lock:
            if self.segmented and key in self._protected:
                self._protected[key] = entry
                self._protected.move_to_end(key)
            else:
                self._entries[key] = entry
                self._entries.move_to_end(key)
            while len(self._entries) + len(self._protected) > self.capacity:
                victims = self._entries if self._entries else self._protected
                victims.popitem(last=False)
                self._evictions += 1

    # -- maintenance -------------------------------------------------------------------

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._protected.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries) + len(self._protected)

    @property
    def stats(self) -> CacheStats:
        """An immutable snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                invalidations=self._invalidations,
                promotions=self._promotions,
                size=len(self._entries) + len(self._protected),
                protected_size=len(self._protected),
            )

    def __repr__(self) -> str:
        stats = self.stats
        policy = "slru" if self.segmented else "lru"
        return (
            f"ResultCache({policy}, size={stats.size}/{self.capacity}, "
            f"hits={stats.hits}, misses={stats.misses}, hit_rate={stats.hit_rate:.2f})"
        )
