"""The event-loop HTTP transport: one ``selectors`` loop, a worker pool.

:class:`AsyncSemTreeServer` serves the same apps as the threaded
:class:`~repro.server.http.SemTreeServer` — identical URL surface,
identical wire behaviour (both transports share every status, error body
and close decision through :mod:`repro.server.protocol`) — but holds
connections without holding threads:

- **One event loop** (a ``selectors.DefaultSelector`` on a dedicated
  thread) owns every socket: accept, non-blocking reads feeding the
  incremental :class:`~repro.server.protocol.RequestParser`, non-blocking
  buffered writes, idle reaping, and paced slow-drip chunks.  A thousand
  idle keep-alive connections cost a thousand registered file descriptors,
  not a thousand blocked threads.
- **A bounded worker pool** runs the app.  The loop hands each
  fully-framed request to a ``ThreadPoolExecutor``; the finished
  :class:`~repro.server.protocol.WireResponse` comes back over a
  completion queue and a self-pipe wakeup, and the loop writes it out.
- **Backpressure by design.**  While a request is in flight the loop stops
  reading that connection entirely (a pipelining client blocks in its own
  socket buffer, and bytes that *did* arrive early are rejected with a
  400); the write side buffers at most one response.  Together with the
  parser's line/header caps and the 413 body cap, per-connection memory is
  bounded at roughly one request plus one response.
- **Admission moves to enqueue time.**  With a ``max_queue_depth``
  configured on the app's admission controller, the loop sheds (503 +
  ``Retry-After``) *before* submitting to the pool, so overload never even
  costs a context switch.
- **Slowloris defence.**  ``idle_timeout`` reaps connections that stop
  making progress (drip-fed headers, stalled readers mid-response);
  ``request_timeout`` bounds a whole request's framing time no matter how
  steadily the bytes drip in.

The optional **wire cache** (off by default; the CLI enables it for
single-node servers) serves byte-identical repeat answers for read-only
endpoints straight from the loop thread: entries are keyed on
``(route, raw request body)`` and stamped with the app's
``wire_cache_epoch()`` — ``(tree generation, WAL sequence)`` for a
:class:`~repro.server.app.ServerApp` — so any insert invalidates every
cached answer.  Requests carrying deadlines, partial-result opt-ins,
debug-trace opt-ins, client ids under admission control, or any fault
plan bypass the cache entirely.

**Drain semantics** match the threaded transport (pinned by
``tests/server/test_shutdown_drain.py``): :meth:`close` stops accepting,
drops idle connections, finishes every in-flight request — frame, handle,
*write the response* — and only then closes the app (checkpointing the
WAL position).
"""

from __future__ import annotations

import collections
import selectors
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, Optional, Tuple

from repro.faults import FaultPlan
from repro.obs import export as obs_export
from repro.obs.tracing import sanitize_trace_id
from repro.server.protocol import (Dispatcher, ParsedRequest, RequestParser,
                                   WireResponse, shut_socket)

__all__ = ["AsyncSemTreeServer"]

#: Bytes pulled per non-blocking socket read.
_RECV_SIZE = 64 * 1024

#: Histogram buckets for the loop-lag metric (seconds): the time a
#: finished response waited in the completion queue before the loop wrote
#: it — the single best indicator of a saturated or stalled event loop.
_LAG_BUCKETS = (0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0)


class _Connection:
    """One accepted socket's state, owned exclusively by the loop thread."""

    __slots__ = ("sock", "client", "parser", "out", "state", "alive",
                 "last_activity", "request_started_at", "close_after_write",
                 "next_chunk_at", "early", "cache_slot")

    def __init__(self, sock: socket.socket, client: str, now: float):
        self.sock = sock
        self.client = client
        self.parser = RequestParser()
        #: Pending output: ``(not_before, bytes)`` chunks (paced for drip).
        self.out: Deque[Tuple[float, bytes]] = collections.deque()
        #: "read" (framing a request), "busy" (handed to the pool) or
        #: "write" (response queued / partially written).
        self.state = "read"
        self.alive = True
        self.last_activity = now
        self.request_started_at: Optional[float] = None
        self.close_after_write = False
        self.next_chunk_at: Optional[float] = None
        self.early = False
        #: Armed when the in-flight request is wire-cacheable:
        #: ``(cache key, epoch at dispatch)``.
        self.cache_slot: Optional[Tuple[tuple, tuple]] = None

    def reset_for_next_request(self) -> None:
        self.parser = RequestParser()
        self.state = "read"
        self.request_started_at = None
        self.next_chunk_at = None
        self.early = False
        self.cache_slot = None


class AsyncSemTreeServer:
    """The event-loop front end: one app, one listening socket, one loop.

    Parameters mirror :class:`~repro.server.http.SemTreeServer` (``app``,
    ``host``/``port``, ``quiet``, ``request_timeout``, ``fault_plan``),
    plus the loop-specific knobs:

    idle_timeout:
        Seconds of *no progress* before a connection is reaped — an idle
        keep-alive socket, a slowloris drip-feeding headers, or a stalled
        reader mid-response.  Defaults to ``request_timeout``.
    transport_workers:
        Size of the worker pool that runs the app (the engine below has
        its own pool; these workers parse JSON, execute handlers and
        serialise responses).
    wire_cache / wire_cache_capacity:
        Enable the loop-side response byte cache (see the module
        docstring).  Only effective when the app exposes
        ``wire_cache_epoch()`` and ``wire_cacheable_routes()``.

    Use :meth:`serve_background` for an in-process server and
    :meth:`serve_forever` on a dedicated (main) thread for a deployment;
    prefer constructing through :func:`repro.server.create_server`.
    """

    #: Transport name, as accepted by ``create_server``.
    transport = "async"

    def __init__(self, app, *, host: str = "127.0.0.1", port: int = 0,
                 quiet: bool = True, request_timeout: float = 30.0,
                 idle_timeout: Optional[float] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 transport_workers: int = 8,
                 wire_cache: bool = False, wire_cache_capacity: int = 4096):
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        self.app = app
        self.quiet = quiet
        self.fault_plan = fault_plan
        self.request_timeout = request_timeout
        self.idle_timeout = request_timeout if idle_timeout is None else idle_timeout
        self.draining = False
        self.dispatcher = Dispatcher(app, quiet=quiet, fault_plan=fault_plan,
                                     record_wire_bytes=self.record_wire_bytes)

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._listener.setblocking(False)

        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ,
                                "listener")
        self._wakeup_recv, self._wakeup_send = socket.socketpair()
        self._wakeup_recv.setblocking(False)
        self._wakeup_send.setblocking(False)
        self._selector.register(self._wakeup_recv, selectors.EVENT_READ,
                                "wakeup")

        self._executor = ThreadPoolExecutor(
            max_workers=transport_workers, thread_name_prefix="semtree-async")
        self._connections: Dict[socket.socket, _Connection] = {}
        self._pending = 0
        self._completions: Deque[Tuple[_Connection, WireResponse, float]] = \
            collections.deque()
        self._completions_lock = threading.Lock()
        self._commands: Deque[Tuple[str, Optional[threading.Event]]] = \
            collections.deque()
        self._loop_thread: Optional[threading.Thread] = None
        self._closed = False

        self._wire_lock = threading.Lock()
        self._wire_bytes: Dict[str, int] = {"in": 0, "out": 0}

        # -- wire cache (loop-thread state; see module docstring) ---------
        epoch_fn = getattr(app, "wire_cache_epoch", None)
        routes_fn = getattr(app, "wire_cacheable_routes", None)
        self._cache_enabled = (wire_cache and epoch_fn is not None
                               and routes_fn is not None)
        self._cache_epoch = epoch_fn
        self._cache_routes = frozenset(routes_fn()) if self._cache_enabled else frozenset()
        self._cache_capacity = wire_cache_capacity
        self._cache: "collections.OrderedDict[tuple, Tuple[tuple, bytes]]" = \
            collections.OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0

        self._loop_lag = None
        registry = getattr(app, "registry", None)
        if registry is not None:
            obs_export.bind_wire_bytes(registry, self.wire_bytes)
            registry.gauge(
                "repro_open_connections",
                "Live HTTP connections held by the transport.",
            ).set_function(lambda: float(len(self._connections)))
            self._loop_lag = registry.histogram(
                "repro_loop_lag_seconds",
                "Delay between a response finishing and the event loop "
                "writing it (completion-queue wait).",
                buckets=_LAG_BUCKETS)
            registry.counter(
                "repro_wire_cache_hits_total",
                "Responses served from the transport's wire cache.",
            ).set_function(lambda: float(self._cache_hits))
            registry.counter(
                "repro_wire_cache_misses_total",
                "Cacheable requests the wire cache could not serve.",
            ).set_function(lambda: float(self._cache_misses))

    # -- wire accounting (fed by the shared Dispatcher + the cache path) ----------------

    def record_wire_bytes(self, direction: str, count: int) -> None:
        with self._wire_lock:
            self._wire_bytes[direction] += count

    def wire_bytes(self) -> Dict[str, int]:
        """HTTP body bytes moved so far, keyed ``in`` / ``out``."""
        with self._wire_lock:
            return dict(self._wire_bytes)

    def wire_cache_stats(self) -> Dict[str, int]:
        """Wire-cache counters: ``hits`` / ``misses`` / ``entries``."""
        return {"hits": self._cache_hits, "misses": self._cache_misses,
                "entries": len(self._cache)}

    # -- addresses ----------------------------------------------------------------------

    @property
    def server_address(self) -> Tuple[str, int]:
        return self._listener.getsockname()[:2]

    @property
    def bound_port(self) -> int:
        """The port actually bound (resolves ``port=0``)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        return f"http://{self.server_address[0]}:{self.bound_port}"

    # -- lifecycle ----------------------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the event loop on the calling thread until :meth:`close`."""
        self._run_loop()

    def serve_background(self) -> "AsyncSemTreeServer":
        """Serve on a daemon thread; returns once the socket is accepting."""
        if self._loop_thread is None or not self._loop_thread.is_alive():
            self._loop_thread = threading.Thread(
                target=self._run_loop, name="semtree-async-loop", daemon=True)
            self._loop_thread.start()
        return self

    def close(self, *, checkpoint: bool | None = None) -> Optional[int]:
        """Stop accepting, drain in-flight requests, shut the app down.

        The drain contract matches the threaded transport: every request
        whose first bytes arrived before shutdown completes fully —
        handler runs, response bytes written — before
        ``app.close(checkpoint=...)`` tears down the engine and
        checkpoints the WAL position.  Idle connections are dropped
        immediately; a request that never finishes framing is abandoned
        after ``request_timeout``.

        Returns the checkpointed ``wal_seq`` (see ``ServerApp.close``).
        """
        self.draining = True
        self._wake()
        if self._loop_thread is not None:
            self._loop_thread.join()
            self._loop_thread = None
        elif not self._closed:
            # serve_forever (if any) runs on another thread we cannot
            # join; the draining flag + wakeup still stops it.  When the
            # loop never ran at all, tear down the sockets here.
            self._teardown_loop()
        self._executor.shutdown(wait=True)
        return self.app.close(checkpoint=checkpoint)

    def __enter__(self) -> "AsyncSemTreeServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _close_idle_connections(self) -> None:
        """Drop connections with no request in flight (loop does the work).

        Provided for API parity with the threaded transport (tests use it
        to exercise client-side stale-connection retries).  Blocks until
        the loop has processed the sweep.
        """
        if self._loop_thread is None or not self._loop_thread.is_alive():
            return
        done = threading.Event()
        self._commands.append(("close_idle", done))
        self._wake()
        done.wait(timeout=5.0)

    # -- the event loop -----------------------------------------------------------------

    def _wake(self) -> None:
        try:
            self._wakeup_send.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # queue full (a wakeup is already pending) or torn down

    def _run_loop(self) -> None:
        try:
            while True:
                timeout = self._loop_timeout()
                events = self._selector.select(timeout)
                now = time.monotonic()
                for key, mask in events:
                    if key.data == "listener":
                        self._accept(now)
                    elif key.data == "wakeup":
                        self._drain_wakeup()
                    else:
                        conn: _Connection = key.data
                        if not conn.alive:
                            continue
                        if mask & selectors.EVENT_READ:
                            self._on_readable(conn, now)
                        if conn.alive and mask & selectors.EVENT_WRITE:
                            self._flush(conn, now)
                self._drain_commands()
                self._drain_completions(now)
                self._flush_paced(now)
                self._reap(now)
                if self.draining and self._drained():
                    break
        finally:
            self._closed = True
            self._teardown_loop()

    def _loop_timeout(self) -> float:
        base = min(self.idle_timeout, self.request_timeout) / 4.0
        timeout = min(max(base, 0.01), 0.5)
        if self.draining:
            timeout = min(timeout, 0.05)
        now = time.monotonic()
        for conn in self._connections.values():
            if conn.next_chunk_at is not None:
                timeout = min(timeout, max(conn.next_chunk_at - now, 0.0))
        return timeout

    def _drained(self) -> bool:
        """True when shutdown may finish: nothing in flight anywhere."""
        if self._pending or self._completions:
            return False
        for conn in self._connections.values():
            if conn.state != "read" or conn.parser.started:
                return False
        # Only idle connections remain; drop them and finish.
        for conn in list(self._connections.values()):
            self._drop(conn)
        return True

    def _teardown_loop(self) -> None:
        for conn in list(self._connections.values()):
            self._drop(conn)
        for sock in (self._listener, self._wakeup_recv, self._wakeup_send):
            try:
                self._selector.unregister(sock)
            except (KeyError, ValueError):
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._selector.close()

    # -- accept / read ------------------------------------------------------------------

    def _accept(self, now: float) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            if self.draining:
                sock.close()
                continue
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _Connection(sock, f"{addr[0]}:{addr[1]}", now)
            self._connections[sock] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _on_readable(self, conn: _Connection, now: float) -> None:
        if conn.state != "read":
            return
        try:
            data = conn.sock.recv(_RECV_SIZE)
        except BlockingIOError:
            return
        except OSError:
            self._drop(conn)
            return
        if not data:
            if conn.parser.started:
                # The peer closed mid-request: best-effort structured 400.
                self._queue_response(
                    conn, self.dispatcher.truncated_response(conn.client),
                    now, close=True)
            else:
                self._drop(conn)
            return
        conn.last_activity = now
        if conn.request_started_at is None:
            conn.request_started_at = now
        conn.parser.feed(data)
        self._progress(conn, now)

    def _progress(self, conn: _Connection, now: float) -> None:
        """Advance one connection from framing toward dispatch."""
        parser = conn.parser
        if parser.state == "paused":
            assert parser.request is not None
            if self.dispatcher.needs_body(parser.request):
                parser.begin_body()
            else:
                conn.early = True
        if parser.state == "error":
            assert parser.error is not None
            self._queue_response(
                conn, self.dispatcher.framing_response(parser.error, conn.client),
                now, close=True)
            return
        if parser.state not in ("complete", "paused"):
            return
        if conn.early and parser.state == "paused":
            request = parser.request
        elif parser.state == "complete":
            request = parser.request
        else:
            return
        assert request is not None
        if parser.remainder and not (conn.early and request.body_indicated):
            # Bytes beyond the framed request arrived before we answered:
            # the client is pipelining, which this server rejects.
            self._queue_response(
                conn, self.dispatcher.pipelining_response(conn.client),
                now, close=True)
            return
        self._dispatch(conn, request, now)

    # -- dispatch -----------------------------------------------------------------------

    def _dispatch(self, conn: _Connection, request: ParsedRequest,
                  now: float) -> None:
        # The loop stops reading this connection while its request is in
        # flight: natural backpressure, and the pipelining check above
        # stays accurate because no new bytes are consumed.
        conn.state = "busy"
        self._unregister(conn)

        cached = self._cache_lookup(conn, request)
        if cached is not None:
            trace_id = sanitize_trace_id(request.headers.get("X-Trace-Id"))
            response = WireResponse(200, body=cached, trace_id=trace_id,
                                    close=not request.keep_alive)
            self.record_wire_bytes("in", len(request.body or b""))
            self.record_wire_bytes("out", len(cached))
            self.dispatcher.access_log(request.method, request.route, 200,
                                       0.0, conn.client, trace_id)
            self._queue_response(conn, response, now)
            return

        admission = getattr(self.app, "admission", None)
        if (admission is not None and admission.enabled
                and admission.max_queue_depth is not None
                and self._pending >= admission.max_queue_depth):
            # Enqueue-time shedding: the pool is already holding a full
            # queue's worth of requests, so reject before paying for a
            # submit + context switch (the app-level check would only shed
            # it later, from a worker).
            error = admission.shed_transport_overflow(pending=self._pending)
            self._queue_response(
                conn, self.dispatcher.shed_response(error, conn.client), now)
            return

        self._pending += 1
        self._executor.submit(self._worker_dispatch, conn, request)

    def _worker_dispatch(self, conn: _Connection,
                         request: ParsedRequest) -> None:
        """Pool-thread half: run the shared dispatcher, post the result."""
        try:
            response = self.dispatcher.dispatch(request, conn.client)
        except Exception as error:  # noqa: BLE001 - the loop must never die
            import json as _json
            response = WireResponse(500, body=_json.dumps({"error": {
                "type": type(error).__name__, "message": str(error),
            }}).encode("utf-8"), close=True)
        with self._completions_lock:
            self._completions.append((conn, response, time.monotonic()))
        self._wake()

    def _drain_completions(self, now: float) -> None:
        while True:
            with self._completions_lock:
                if not self._completions:
                    return
                conn, response, finished_at = self._completions.popleft()
            self._pending -= 1
            if self._loop_lag is not None:
                self._loop_lag.observe(max(now - finished_at, 0.0))
            if not conn.alive:
                continue
            if response.reset:
                shut_socket(conn.sock)
                self._drop(conn)
                continue
            self._cache_fill(conn, response)
            self._queue_response(conn, response, now)

    # -- the wire cache (loop-thread only) ----------------------------------------------

    def _cache_lookup(self, conn: _Connection,
                      request: ParsedRequest) -> Optional[bytes]:
        if not self._cache_enabled or self.draining:
            return None
        if request.method != "POST" or request.body is None:
            return None
        route = request.route
        if route not in self._cache_routes:
            return None
        if self.fault_plan is not None:
            return None
        admission = getattr(self.app, "admission", None)
        if admission is not None and admission.enabled:
            return None
        headers = request.headers
        if "X-Debug-Trace" in headers or "Idempotency-Key" in headers:
            return None
        body = request.body
        # Deadlines and partial-result opt-ins make answers time- or
        # topology-dependent; anything mentioning them takes the full path.
        if b"deadline" in body or b"allow_partial" in body:
            return None
        epoch = self._cache_epoch()
        key = (route, body)
        entry = self._cache.get(key)
        if entry is not None:
            if entry[0] == epoch:
                self._cache.move_to_end(key)
                self._cache_hits += 1
                return entry[1]
            del self._cache[key]  # stale epoch: an insert landed since
        self._cache_misses += 1
        conn.cache_slot = (key, epoch)
        return None

    def _cache_fill(self, conn: _Connection, response: WireResponse) -> None:
        slot = conn.cache_slot
        conn.cache_slot = None
        if slot is None or response.status != 200 or response.drip is not None:
            return
        key, epoch = slot
        if self._cache_epoch() != epoch:
            return  # an insert raced this query; the answer may be stale
        self._cache[key] = (epoch, response.body)
        self._cache.move_to_end(key)
        while len(self._cache) > self._cache_capacity:
            self._cache.popitem(last=False)

    # -- write side ---------------------------------------------------------------------

    def _queue_response(self, conn: _Connection, response: WireResponse,
                        now: float, *, close: bool = False) -> None:
        conn.state = "write"
        conn.close_after_write = (conn.close_after_write or close
                                  or response.close or self.draining)
        head = response.encode_head()
        if response.drip is not None and response.body:
            conn.out.append((0.0, head))
            at = now
            for pause, chunk in response.drip_chunks():
                at += pause
                conn.out.append((at, chunk))
        else:
            conn.out.append((0.0, head + response.body))
        self._flush(conn, now)

    def _flush(self, conn: _Connection, now: float) -> None:
        """Write as much buffered output as the socket (and pacing) allows."""
        conn.next_chunk_at = None
        while conn.out:
            not_before, data = conn.out[0]
            if not_before > now:
                conn.next_chunk_at = not_before
                self._want_write(conn, False)
                return
            try:
                sent = conn.sock.send(data)
            except BlockingIOError:
                self._want_write(conn, True)
                return
            except OSError:
                self._drop(conn)
                return
            conn.last_activity = now
            if sent < len(data):
                conn.out[0] = (not_before, data[sent:])
                self._want_write(conn, True)
                return
            conn.out.popleft()
        # Response fully written.
        if conn.close_after_write:
            self._drop(conn)
            return
        conn.reset_for_next_request()
        self._set_events(conn, selectors.EVENT_READ)

    def _flush_paced(self, now: float) -> None:
        for conn in list(self._connections.values()):
            if (conn.alive and conn.next_chunk_at is not None
                    and conn.next_chunk_at <= now):
                self._flush(conn, now)

    def _want_write(self, conn: _Connection, writable_interest: bool) -> None:
        self._set_events(conn,
                         selectors.EVENT_WRITE if writable_interest else 0)

    # -- selector bookkeeping -----------------------------------------------------------

    def _set_events(self, conn: _Connection, events: int) -> None:
        try:
            key = self._selector.get_key(conn.sock)
        except KeyError:
            if events:
                self._selector.register(conn.sock, events, conn)
            return
        if not events:
            self._selector.unregister(conn.sock)
        elif key.events != events:
            self._selector.modify(conn.sock, events, conn)

    def _unregister(self, conn: _Connection) -> None:
        self._set_events(conn, 0)

    def _drop(self, conn: _Connection) -> None:
        if not conn.alive:
            return
        conn.alive = False
        self._unregister(conn)
        self._connections.pop(conn.sock, None)
        try:
            conn.sock.close()
        except OSError:
            pass

    # -- maintenance --------------------------------------------------------------------

    def _drain_wakeup(self) -> None:
        while True:
            try:
                if not self._wakeup_recv.recv(4096):
                    return
            except (BlockingIOError, OSError):
                return

    def _drain_commands(self) -> None:
        while self._commands:
            command, done = self._commands.popleft()
            if command == "close_idle":
                for conn in list(self._connections.values()):
                    if conn.state == "read" and not conn.parser.started:
                        self._drop(conn)
            if done is not None:
                done.set()

    def _reap(self, now: float) -> None:
        """Close connections that stopped making progress (slowloris guard).

        - idle keep-alive (no request started): ``idle_timeout`` since the
          last byte in either direction;
        - mid-request framing (slow header/body drip): ``request_timeout``
          since the request's first byte, or ``idle_timeout`` since the
          last byte — whichever trips first;
        - mid-response (stalled reader): ``idle_timeout`` since the last
          successful write.

        Like the threaded transport's socket timeout, reaping closes the
        connection silently — no bytes of a response could be trusted to
        reach a peer this far gone.
        """
        for conn in list(self._connections.values()):
            if not conn.alive or conn.state == "busy":
                continue
            if conn.state == "read":
                if not conn.parser.started:
                    if (now - conn.last_activity > self.idle_timeout
                            or self.draining):
                        self._drop(conn)
                elif (now - conn.last_activity > self.idle_timeout
                      or (conn.request_started_at is not None
                          and now - conn.request_started_at
                          > self.request_timeout)):
                    self._drop(conn)
            elif conn.state == "write" and conn.next_chunk_at is None:
                if now - conn.last_activity > self.idle_timeout:
                    self._drop(conn)
