"""Cluster topology: which shard server(s) serve which partition.

A topology is a plain mapping ``partition_id → replica base URLs``.  Every
partition has at least one replica; the first listed is the *primary* (the
transport prefers it while healthy, and :meth:`ShardTopology.url_of` keeps
returning it for single-replica callers).  Operators write topologies
either inline — replicas separated by ``|`` —

    --shards "P0=http://10.0.0.1:9000|http://10.0.0.2:9000,P1=http://10.0.0.3:9000"

or as a JSON file whose values are a URL or a list of URLs::

    {"P0": ["http://10.0.0.1:9000", "http://10.0.0.2:9000"],
     "P1": "http://10.0.0.3:9000"}

The launcher (:mod:`repro.coordinator.launcher`) builds one from the ports
its shard subprocesses actually bound.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from repro.errors import ShardError

__all__ = ["ShardTopology"]

#: Inline-form separator between replica URLs of one partition.
REPLICA_SEPARATOR = "|"


def _normalise_urls(partition_id: str, value: Union[str, Sequence[str]],
                    ) -> Tuple[str, ...]:
    """One shard entry's value → a validated, ordered replica URL tuple."""
    if isinstance(value, str):
        urls: Sequence[str] = [value]
    elif isinstance(value, (list, tuple)):
        urls = list(value)
    else:
        raise ShardError(
            f"shard {partition_id!r} needs an http base URL or a list of "
            f"them, got {type(value).__name__}"
        )
    if not urls:
        raise ShardError(f"shard {partition_id!r} needs at least one replica URL")
    cleaned: List[str] = []
    for url in urls:
        if not isinstance(url, str) or not url.startswith("http"):
            raise ShardError(
                f"shard {partition_id!r} needs an http base URL, got {url!r}"
            )
        url = url.rstrip("/")
        if url in cleaned:
            raise ShardError(
                f"shard {partition_id!r} lists replica {url!r} twice"
            )
        cleaned.append(url)
    return tuple(cleaned)


@dataclass(frozen=True)
class ShardTopology:
    """An immutable ``partition_id → replica base URLs`` mapping.

    ``shards`` accepts a bare URL or a sequence of URLs per partition and
    normalises every value to a tuple, so single-replica topologies keep
    their one-URL-per-partition reading and tests can still build
    ``ShardTopology({"P0": "http://..."})`` directly.
    """

    shards: Mapping[str, Union[str, Sequence[str]]]

    def __post_init__(self) -> None:
        if not self.shards:
            raise ShardError("a topology needs at least one shard")
        normalised: Dict[str, Tuple[str, ...]] = {}
        for partition_id, value in self.shards.items():
            if not partition_id or not isinstance(partition_id, str):
                raise ShardError(f"invalid partition id {partition_id!r}")
            normalised[partition_id] = _normalise_urls(partition_id, value)
        object.__setattr__(self, "shards", normalised)

    @classmethod
    def parse(cls, text: str) -> "ShardTopology":
        """Parse the inline ``P0=http://a|http://b,P1=...`` form."""
        shards: Dict[str, Tuple[str, ...]] = {}
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            partition_id, separator, urls = entry.partition("=")
            if not separator:
                raise ShardError(
                    f"cannot parse shard entry {entry!r}: expected "
                    "PARTITION_ID=http://host:port[|http://replica:port...]"
                )
            shards[partition_id.strip()] = tuple(
                url.strip() for url in urls.split(REPLICA_SEPARATOR) if url.strip()
            )
        return cls(shards)

    @classmethod
    def from_file(cls, path: str | pathlib.Path) -> "ShardTopology":
        """Load a ``{"P0": "http://..." | ["http://...", ...], ...}`` JSON file."""
        try:
            payload = json.loads(pathlib.Path(path).read_text())
        except json.JSONDecodeError as error:
            raise ShardError(f"topology file is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ShardError("a topology file must hold one JSON object")
        return cls({str(key): value for key, value in payload.items()})

    # -- queries ------------------------------------------------------------------------

    def url_of(self, partition_id: str) -> str:
        """Primary (first-listed) replica URL of ``partition_id``."""
        return self.replicas_of(partition_id)[0]

    def replicas_of(self, partition_id: str) -> Tuple[str, ...]:
        """Every replica URL serving ``partition_id``, preference-ordered."""
        try:
            return self.shards[partition_id]  # type: ignore[return-value]
        except KeyError:
            raise ShardError(
                f"no shard serves partition {partition_id!r} "
                f"(topology covers: {', '.join(self.partition_ids)})"
            ) from None

    @property
    def partition_ids(self) -> Tuple[str, ...]:
        """Every partition the topology covers, sorted."""
        return tuple(sorted(self.shards))

    @property
    def replica_count(self) -> int:
        """Total replica URLs across every partition."""
        return sum(len(urls) for urls in self.shards.values())

    def missing(self, required: Iterable[str]) -> List[str]:
        """Partitions in ``required`` that no shard serves (sorted)."""
        return sorted(set(required) - set(self.shards))

    def __len__(self) -> int:
        return len(self.shards)

    def __repr__(self) -> str:
        return f"ShardTopology({dict(self.shards)!r})"
