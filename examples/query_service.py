"""Query service demo: batched serving, result caching and index snapshots.

Builds a SemTree index over the quickstart requirements, stands a
:class:`~repro.service.engine.QueryEngine` up in front of it, serves a
mixed batch of k-NN / range / pattern-filtered queries, prints the serving
metrics, then snapshots the index and shows the warm-started copy answering
identically.

Run with::

    python examples/query_service.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import SemTreeConfig, SemTreeIndex
from repro.rdf import TriplePattern, parse_turtle
from repro.requirements import build_requirement_distance, build_requirement_vocabularies
from repro.service import QueryEngine, QuerySpec, load_index, save_index
from repro.workloads import mixed_query_specs

REQUIREMENTS_DOCUMENT = """
# On-board software requirements (excerpt)
(OBSW001, Fun:acquire_in, InType:pre-launch-phase)
(OBSW001, Fun:accept_cmd, CmdType:start-up)
(OBSW001, Fun:send_msg, MsgType:power-amplifier)
(OBSW002, Fun:accept_cmd, CmdType:shutdown)
(OBSW002, Fun:send_msg, MsgType:heartbeat)
(OBSW003, Fun:block_cmd, CmdType:start-up)
(OBSW001, Fun:block_cmd, CmdType:start-up)
(OBSW004, Fun:transmit_tm, TmType:temperature-frame)
(OBSW004, Fun:withhold_tm, TmType:temperature-frame)
(OBSW005, Fun:enable_mode, ModeType:safe-mode)
"""


def main() -> None:
    # 1. Build the index (as in examples/quickstart.py).
    triples = parse_turtle(REQUIREMENTS_DOCUMENT)
    actor_names = sorted({t.subject.name for t in triples})  # type: ignore[union-attr]
    distance = build_requirement_distance(build_requirement_vocabularies(actor_names))
    index = SemTreeIndex(distance, SemTreeConfig(dimensions=4, bucket_size=4,
                                                 max_partitions=3, partition_capacity=8))
    index.add_triples(triples, document_id="quickstart")
    index.build()
    print(f"Index built over {len(index)} triples "
          f"({index.statistics()['partitions']} partitions)")

    # 2. Serve a mixed batch twice: the repeat run is served from the cache.
    specs = mixed_query_specs(triples, 64, k=3, radius=0.25,
                              repeat_fraction=0.4, seed=5)
    with QueryEngine(index, workers=4) as engine:
        engine.execute_batch(specs)
        engine.execute_batch(specs)

        # A pattern-filtered query: "semantic neighbours of blocking start-up,
        # but only statements about OBSW001".
        target = triples[6]  # (OBSW001, Fun:block_cmd, CmdType:start-up)
        pattern = TriplePattern(subject=target.subject)
        filtered = engine.execute(QuerySpec.k_nearest(target, 3, pattern=pattern))
        print(f"\nPattern-filtered neighbours of {target}:")
        for match in filtered.matches:
            print(f"  d={match.distance:.4f}  {match.triple}")

        stats = engine.statistics()
        print("\nService statistics:")
        print(f"  queries:         {stats['queries']}")
        print(f"  qps:             {stats['qps']:.0f}")
        print(f"  cache hit rate:  {stats['cache']['hit_rate']:.2f}")
        print(f"  p50 latency:     {stats['latency_ms']['p50']:.3f} ms")
        print(f"  partition loads: {stats['partition_loads']}")

        # 3. Snapshot the index and warm-start a second service from it.
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "semtree-snapshot.json"
            save_index(index, path)
            print(f"\nSnapshot written ({path.stat().st_size} bytes)")
            loaded = load_index(path, distance)
            with QueryEngine(loaded, workers=2) as warm_engine:
                original = engine.execute_sequential([QuerySpec.k_nearest(target, 3)])
                restored = warm_engine.execute_sequential([QuerySpec.k_nearest(target, 3)])
        identical = [r.matches for r in original] == [r.matches for r in restored]
        print(f"Warm-started service answers identically: {identical}")


if __name__ == "__main__":
    main()
