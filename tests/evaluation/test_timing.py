"""Tests for the timing utilities (wall clock + simulated costs)."""

import time

from repro.cluster import SimulatedCluster
from repro.evaluation import TimingSample, WallClockTimer, measure


class TestWallClockTimer:
    def test_measures_elapsed_time(self):
        with WallClockTimer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009
        assert timer.elapsed_ms >= 9.0


class TestMeasure:
    def test_without_cluster_only_wall_clock(self):
        sample = measure(lambda: sum(range(1000)))
        assert sample.wall_seconds >= 0.0
        assert sample.simulated_critical_path is None
        assert sample.messages is None

    def test_with_cluster_collects_simulated_costs(self):
        cluster = SimulatedCluster(node_count=2)
        cluster.place_partition("P0", lambda m: None)

        def operation():
            cluster.charge_work("P0", 7.0)

        sample = measure(operation, cluster=cluster)
        assert sample.simulated_total_work == 7.0
        assert sample.simulated_critical_path == 7.0
        assert sample.messages == 0

    def test_reset_costs_flag(self):
        cluster = SimulatedCluster(node_count=1)
        cluster.place_partition("P0", lambda m: None)
        cluster.charge_work("P0", 5.0)
        kept = measure(lambda: cluster.charge_work("P0", 1.0), cluster=cluster,
                       reset_costs=False)
        assert kept.simulated_total_work == 6.0
        reset = measure(lambda: cluster.charge_work("P0", 1.0), cluster=cluster)
        assert reset.simulated_total_work == 1.0

    def test_timing_sample_wall_ms(self):
        assert TimingSample(wall_seconds=0.5).wall_ms == 500.0
