"""Smoke tests: every shipped example runs end-to-end and prints sensible output."""

import pathlib
import subprocess
import sys


EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=600, check=True,
    )
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "Parsed 10 triples" in output
        assert "Top-3 semantic neighbours" in output
        # the motivating example: accept_cmd start-up is retrieved for the
        # block_cmd start-up target triple
        assert "Fun:accept_cmd, CmdType:start-up" in output

    def test_requirements_inconsistency(self):
        output = run_example("requirements_inconsistency.py")
        assert "Detected" in output
        assert "Effectiveness over" in output
        assert "precision" in output

    def test_distributed_scaling(self):
        output = run_example("distributed_scaling.py")
        assert "partitions" in output
        assert "messages" in output

    def test_semantic_search(self):
        output = run_example("semantic_search.py")
        assert "ranked documents" in output
        assert "record-002" in output

    def test_query_service(self):
        output = run_example("query_service.py")
        assert "Pattern-filtered neighbours" in output
        assert "cache hit rate" in output
        assert "Warm-started service answers identically: True" in output

    def test_live_ingest(self):
        output = run_example("live_ingest.py")
        assert "Answers equal a full rebuild: True" in output
        assert "Recovered service answers identically: True" in output
        assert "compactions" in output

    def test_run_server(self):
        output = run_example("run_server.py")
        assert "listening on http://" in output
        assert "Immediately queryable" in output
        assert "served from cache on repeat" in output
        assert "checkpointed through wal_seq" in output
        assert "Recovered server still knows the HTTP-inserted triple: True" in output

    def test_run_sharded_cluster(self):
        output = run_example("run_sharded_cluster.py")
        assert "launching the coordinator" in output
        assert "distances identical" in output
        assert "structured failure: ShardError (HTTP 502)" in output
        assert "exactness restored" in output
