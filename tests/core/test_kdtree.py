"""Tests for the sequential bucket KD-tree."""

import random

import pytest

from repro.baselines import LinearScanIndex
from repro.core import KDTree, LabeledPoint, SplitStrategy
from repro.errors import IndexError_, QueryError


def brute_force_knn(points, query, k):
    scan = LinearScanIndex(points)
    return [n.point for n in scan.k_nearest(query, k)]


def brute_force_range(points, query, radius):
    scan = LinearScanIndex(points)
    return {n.point for n in scan.range_query(query, radius)}


@pytest.fixture
def tree_and_points(uniform_points_2d):
    tree = KDTree(2, bucket_size=8)
    tree.insert_all(uniform_points_2d)
    return tree, uniform_points_2d


class TestConstruction:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(IndexError_):
            KDTree(0)
        with pytest.raises(IndexError_):
            KDTree(2, bucket_size=0)

    def test_empty_tree(self):
        tree = KDTree(2)
        assert len(tree) == 0
        assert tree.depth() == 0
        assert tree.node_count() == 1  # the empty root leaf

    def test_insert_wrong_dimensionality(self):
        tree = KDTree(2)
        with pytest.raises(IndexError_):
            tree.insert(LabeledPoint.of([1.0, 2.0, 3.0]))


class TestInsertion:
    def test_size_tracks_insertions(self, uniform_points_2d):
        tree = KDTree(2, bucket_size=4)
        tree.insert_all(uniform_points_2d[:50])
        assert len(tree) == 50
        assert sorted(p.label for p in tree.points()) == sorted(
            p.label for p in uniform_points_2d[:50]
        )

    def test_leaf_splits_when_bucket_saturates(self):
        tree = KDTree(1, bucket_size=2)
        for value in (0.1, 0.2, 0.3):
            tree.insert(LabeledPoint.of([value]))
        assert tree.root.is_routing
        assert tree.leaf_count() == 2
        assert tree.depth() == 1

    def test_data_only_in_leaves(self, tree_and_points):
        tree, _ = tree_and_points
        for node in tree._iter_nodes():
            if node.is_routing:
                assert node.bucket == []

    def test_duplicate_points_allowed_in_oversized_bucket(self):
        tree = KDTree(2, bucket_size=2)
        point = LabeledPoint.of([0.5, 0.5])
        for _ in range(5):
            tree.insert(point)
        assert len(tree) == 5
        assert len(tree.points()) == 5

    def test_bucket_size_respected_for_distinct_points(self, tree_and_points):
        tree, _ = tree_and_points
        for node in tree._iter_nodes():
            if node.is_leaf:
                assert len(node.bucket) <= tree.bucket_size


class TestBulkBuilders:
    def test_balanced_build_has_logarithmic_depth(self, uniform_points_2d):
        tree = KDTree.build_balanced(uniform_points_2d, bucket_size=8)
        assert len(tree) == len(uniform_points_2d)
        assert tree.depth() <= 10
        assert sorted(p.label for p in tree.points()) == sorted(
            p.label for p in uniform_points_2d
        )

    def test_balanced_build_rejects_empty_input(self):
        with pytest.raises(IndexError_):
            KDTree.build_balanced([])

    def test_chain_build_is_totally_unbalanced(self, uniform_points_2d):
        subset = uniform_points_2d[:100]
        tree = KDTree.build_chain(subset)
        assert len(tree) == 100
        assert tree.depth() == 99
        assert sorted(p.label for p in tree.points()) == sorted(p.label for p in subset)

    def test_chain_build_rejects_empty_input(self):
        with pytest.raises(IndexError_):
            KDTree.build_chain([])

    def test_chain_handles_very_deep_trees_iteratively(self):
        rng = random.Random(0)
        points = [LabeledPoint.of([rng.random()], label=i) for i in range(5000)]
        tree = KDTree.build_chain(points)
        assert tree.depth() == 4999
        # Queries on the chain must not hit the recursion limit either.
        assert len(tree.k_nearest(LabeledPoint.of([0.5]), 3)) == 3
        assert tree.range_query(LabeledPoint.of([0.5]), 0.001)

    def test_first_point_dynamic_insertion_degenerates(self):
        points = [LabeledPoint.of([i / 200.0], label=i) for i in range(200)]
        tree = KDTree(1, bucket_size=1, split_strategy=SplitStrategy.FIRST_POINT)
        tree.insert_all(points)  # sorted insertion order
        balanced = KDTree.build_balanced(points, bucket_size=1)
        assert tree.depth() > 4 * balanced.depth()


class TestKNearest:
    def test_matches_linear_scan(self, tree_and_points):
        tree, points = tree_and_points
        rng = random.Random(1)
        for _ in range(20):
            query = LabeledPoint.of([rng.random(), rng.random()])
            expected = brute_force_knn(points, query, 5)
            actual = [n.point for n in tree.k_nearest(query, 5)]
            assert {p.label for p in actual} == {p.label for p in expected}

    def test_results_sorted_by_distance(self, tree_and_points):
        tree, _ = tree_and_points
        neighbours = tree.k_nearest(LabeledPoint.of([0.5, 0.5]), 10)
        distances = [n.distance for n in neighbours]
        assert distances == sorted(distances)

    def test_k_larger_than_tree_returns_everything(self):
        points = [LabeledPoint.of([i / 10.0, 0.0], label=i) for i in range(5)]
        tree = KDTree(2, bucket_size=2)
        tree.insert_all(points)
        assert len(tree.k_nearest(LabeledPoint.of([0.0, 0.0]), 50)) == 5

    def test_query_dimension_checked(self, tree_and_points):
        tree, _ = tree_and_points
        with pytest.raises(QueryError):
            tree.k_nearest(LabeledPoint.of([0.5]), 3)

    def test_exact_match_is_first(self, tree_and_points):
        tree, points = tree_and_points
        target = points[42]
        neighbours = tree.k_nearest(LabeledPoint.of(target.coordinates), 1)
        assert neighbours[0].distance == 0.0

    def test_search_state_counters(self, tree_and_points):
        tree, _ = tree_and_points
        state = tree.k_nearest_state(LabeledPoint.of([0.5, 0.5]), 3)
        assert state.nodes_visited > 0
        assert state.points_examined >= 3
        assert len(state.results) == 3

    def test_balanced_tree_visits_fewer_nodes_than_chain(self, uniform_points_2d):
        subset = uniform_points_2d[:200]
        balanced = KDTree.build_balanced(subset, bucket_size=4)
        chain = KDTree.build_chain(subset)
        query = LabeledPoint.of([0.5, 0.5])
        balanced_state = balanced.k_nearest_state(query, 3)
        chain_state = chain.k_nearest_state(query, 3)
        assert balanced_state.nodes_visited < chain_state.nodes_visited


class TestRangeQuery:
    def test_matches_linear_scan(self, tree_and_points):
        tree, points = tree_and_points
        rng = random.Random(2)
        for _ in range(20):
            query = LabeledPoint.of([rng.random(), rng.random()])
            radius = rng.uniform(0.01, 0.3)
            expected = brute_force_range(points, query, radius)
            actual = {n.point for n in tree.range_query(query, radius)}
            assert actual == expected

    def test_zero_radius_finds_exact_matches_only(self, tree_and_points):
        tree, points = tree_and_points
        target = points[7]
        results = tree.range_query(LabeledPoint.of(target.coordinates), 0.0)
        assert all(n.distance == 0.0 for n in results)
        assert any(n.point == target for n in results)

    def test_negative_radius_rejected(self, tree_and_points):
        tree, _ = tree_and_points
        with pytest.raises(QueryError):
            tree.range_query(LabeledPoint.of([0.5, 0.5]), -0.1)

    def test_results_sorted_by_distance(self, tree_and_points):
        tree, _ = tree_and_points
        results = tree.range_query(LabeledPoint.of([0.5, 0.5]), 0.2)
        distances = [n.distance for n in results]
        assert distances == sorted(distances)

    def test_query_dimension_checked(self, tree_and_points):
        tree, _ = tree_and_points
        with pytest.raises(QueryError):
            tree.range_query(LabeledPoint.of([0.5]), 0.1)

    def test_state_reports_nodes_visited(self, tree_and_points):
        tree, _ = tree_and_points
        results, visited = tree.range_query_state(LabeledPoint.of([0.5, 0.5]), 0.1)
        assert visited >= 1
        assert visited <= tree.node_count()


class TestIntrospection:
    def test_node_and_leaf_counts_consistent(self, tree_and_points):
        tree, _ = tree_and_points
        assert tree.node_count() == tree.leaf_count() + tree.routing_count()
        # a full binary tree has leaves = routing + 1
        assert tree.leaf_count() == tree.routing_count() + 1
