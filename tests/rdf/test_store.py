"""Tests for the in-memory triple store."""

import pytest

from repro.rdf import Concept, Triple, TriplePattern, TripleStore


@pytest.fixture
def store() -> TripleStore:
    store = TripleStore()
    store.add(Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up"), document_id="doc1")
    store.add(Triple.of("OBSW001", "Fun:send_msg", "MsgType:heartbeat"), document_id="doc1")
    store.add(Triple.of("OBSW002", "Fun:accept_cmd", "CmdType:shutdown"), document_id="doc2")
    store.add(Triple.of("OBSW003", "Fun:block_cmd", "CmdType:start-up"), document_id="doc2")
    return store


class TestMutation:
    def test_add_returns_true_for_new_triple(self):
        store = TripleStore()
        assert store.add(Triple.of("a", "b", "c")) is True
        assert store.add(Triple.of("a", "b", "c")) is False
        assert len(store) == 1

    def test_add_all_counts_new_triples(self):
        store = TripleStore()
        added = store.add_all([Triple.of("a", "b", "c"), Triple.of("a", "b", "c"),
                               Triple.of("x", "y", "z")])
        assert added == 2

    def test_remove_present_and_absent(self, store):
        triple = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        assert store.remove(triple) is True
        assert store.remove(triple) is False
        assert triple not in store

    def test_clear(self, store):
        store.clear()
        assert len(store) == 0
        assert store.match(TriplePattern()) == []

    def test_constructor_accepts_triples(self):
        triples = [Triple.of("a", "b", "c"), Triple.of("d", "e", "f")]
        assert len(TripleStore(triples)) == 2


class TestMatching:
    def test_match_by_subject(self, store):
        results = store.match(TriplePattern(subject=Concept("OBSW001")))
        assert len(results) == 2
        assert all(t.subject == Concept("OBSW001") for t in results)

    def test_match_by_predicate(self, store):
        results = store.match(TriplePattern(predicate=Concept("accept_cmd", "Fun")))
        assert len(results) == 2

    def test_match_by_object(self, store):
        results = store.match(TriplePattern(object=Concept("start-up", "CmdType")))
        assert len(results) == 2

    def test_match_combined_positions(self, store):
        pattern = TriplePattern(subject=Concept("OBSW001"),
                                predicate=Concept("accept_cmd", "Fun"))
        assert len(store.match(pattern)) == 1

    def test_match_wildcard_returns_all_in_insertion_order(self, store):
        results = store.match(TriplePattern())
        assert len(results) == 4
        assert results[0].subject == Concept("OBSW001")
        assert results[-1].subject == Concept("OBSW003")

    def test_match_no_results(self, store):
        assert store.match(TriplePattern(subject=Concept("missing"))) == []

    def test_removed_triple_not_matched(self, store):
        triple = Triple.of("OBSW003", "Fun:block_cmd", "CmdType:start-up")
        store.remove(triple)
        assert store.match(TriplePattern(subject=Concept("OBSW003"))) == []


class TestDistinctAndProvenance:
    def test_distinct_subjects_in_first_appearance_order(self, store):
        assert store.subjects() == [Concept("OBSW001"), Concept("OBSW002"), Concept("OBSW003")]

    def test_distinct_predicates(self, store):
        assert Concept("accept_cmd", "Fun") in store.predicates()
        assert len(store.predicates()) == 3

    def test_documents_of(self, store):
        triple = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        assert store.documents_of(triple) == {"doc1"}

    def test_triple_in_multiple_documents(self, store):
        triple = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        store.add(triple, document_id="doc9")
        assert store.documents_of(triple) == {"doc1", "doc9"}

    def test_triples_of_document(self, store):
        assert len(store.triples_of_document("doc2")) == 2
        assert store.triples_of_document("missing") == []

    def test_statistics(self, store):
        stats = store.statistics()
        assert stats["triples"] == 4
        assert stats["subjects"] == 3
        assert stats["documents"] == 2
