"""Evaluation substrate: precision/recall metrics, timing, experiment sweeps
and plain-text reporting."""

from repro.evaluation.metrics import (
    PrecisionRecall,
    average_precision_recall,
    evaluate_retrieval,
    f1_score,
    precision,
    recall,
)
from repro.evaluation.report import format_experiment, format_key_values, format_series_table
from repro.evaluation.runner import Experiment, Series, SeriesPoint
from repro.evaluation.timing import TimingSample, WallClockTimer, measure

__all__ = [
    "PrecisionRecall",
    "precision",
    "recall",
    "f1_score",
    "evaluate_retrieval",
    "average_precision_recall",
    "Experiment",
    "Series",
    "SeriesPoint",
    "TimingSample",
    "WallClockTimer",
    "measure",
    "format_experiment",
    "format_key_values",
    "format_series_table",
]
