"""Tests for the triple embedder (semantic distance + FastMap glue)."""

import numpy as np
import pytest

from repro.embedding import TripleEmbedder
from repro.errors import EmbeddingError
from repro.rdf import Triple


@pytest.fixture
def requirement_triples():
    return [
        Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up"),
        Triple.of("OBSW001", "Fun:block_cmd", "CmdType:start-up"),
        Triple.of("OBSW001", "Fun:send_msg", "MsgType:heartbeat"),
        Triple.of("OBSW002", "Fun:accept_cmd", "CmdType:shutdown"),
        Triple.of("OBSW002", "Fun:enable_mode", "ModeType:safe-mode"),
        Triple.of("OBSW003", "Fun:transmit_tm", "TmType:voltage-frame"),
        Triple.of("OBSW003", "Fun:withhold_tm", "TmType:voltage-frame"),
        Triple.of("HWD001", "Fun:acquire_in", "InType:gps-fix"),
    ]


@pytest.fixture
def embedder(requirement_distance):
    return TripleEmbedder(requirement_distance, dimensions=4, seed=0)


class TestFitting:
    def test_fit_produces_coordinates_for_every_triple(self, embedder, requirement_triples):
        coordinates = embedder.fit_transform(requirement_triples)
        assert coordinates.shape[0] == len(requirement_triples)
        assert 1 <= coordinates.shape[1] <= 4
        assert embedder.is_fitted

    def test_space_access_before_fit_raises(self, embedder):
        assert not embedder.is_fitted
        with pytest.raises(EmbeddingError):
            _ = embedder.space

    def test_output_dimensions_property(self, embedder, requirement_triples):
        embedder.fit(requirement_triples)
        assert embedder.output_dimensions == embedder.space.dimensions


class TestTransform:
    def test_in_sample_transform_matches_fitted_coordinates(self, embedder, requirement_triples):
        embedder.fit(requirement_triples)
        for index, triple in enumerate(requirement_triples):
            assert np.allclose(embedder.transform(triple), embedder.space.coordinates[index])

    def test_out_of_sample_transform_has_right_shape(self, embedder, requirement_triples):
        embedder.fit(requirement_triples)
        query = Triple.of("OBSW009", "Fun:block_cmd", "CmdType:reset")
        assert embedder.transform(query).shape == (embedder.output_dimensions,)

    def test_semantically_close_triples_embed_close(self, embedder, requirement_triples,
                                                    requirement_distance):
        embedder.fit(requirement_triples)
        base = requirement_triples[0]           # OBSW001 accept_cmd start-up
        antinomic = requirement_triples[1]      # OBSW001 block_cmd start-up
        unrelated = requirement_triples[7]      # HWD001 acquire_in gps-fix
        close = np.linalg.norm(embedder.transform(base) - embedder.transform(antinomic))
        far = np.linalg.norm(embedder.transform(base) - embedder.transform(unrelated))
        assert close < far

    def test_transform_many_stacks_rows(self, embedder, requirement_triples):
        embedder.fit(requirement_triples)
        matrix = embedder.transform_many(requirement_triples[:3])
        assert matrix.shape == (3, embedder.output_dimensions)

    def test_transform_many_empty_input(self, embedder, requirement_triples):
        embedder.fit(requirement_triples)
        assert embedder.transform_many([]).shape == (0, embedder.output_dimensions)

    def test_embedded_pairs_preserve_order(self, embedder, requirement_triples):
        embedder.fit(requirement_triples)
        pairs = embedder.embedded_pairs()
        assert [triple for triple, _ in pairs] == requirement_triples
