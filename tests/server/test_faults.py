"""Fault injection: deterministic plans, and chaos at the HTTP handler.

The plan unit tests pin determinism (same seed + same call sequence =
same injections); the end-to-end tests boot a real server with a plan
wired in and assert each fault kind's observable wire behaviour.
"""

from __future__ import annotations

import time

import pytest

from server_corpus import QUERY_TRIPLES
from repro.errors import ReproError, ServerError
from repro.faults import FaultPlan, FaultSpec
from repro.ingest import IngestingIndex
from repro.server import ServerApp, create_server
from repro.workloads import ServerClient


class TestFaultSpec:
    def test_matching(self):
        spec = FaultSpec(operation="scan", target="P0")
        assert spec.matches("scan", "P0@http://a")
        assert not spec.matches("handle", "P0@http://a")
        assert not spec.matches("scan", "P1@http://a")
        assert FaultSpec().matches("anything", "anywhere")

    def test_validation(self):
        with pytest.raises(ReproError):
            FaultSpec(kind="explode")
        with pytest.raises(ReproError):
            FaultSpec(latency=-1.0)
        with pytest.raises(ReproError):
            FaultSpec(probability=2.0)
        with pytest.raises(ReproError):
            FaultSpec(kind="http_5xx", status=404)
        with pytest.raises(ReproError):
            FaultSpec.from_dict({"kind": "latency", "bogus_field": 1})

    def test_round_trips_through_dict(self):
        spec = FaultSpec(operation="handle", target="/v1/knn", kind="http_5xx",
                         status=502, probability=0.5, skip_first=2, max_fires=3)
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultPlan:
    def test_first_matching_spec_wins(self):
        plan = FaultPlan([
            FaultSpec(target="/v1/knn", kind="latency", latency=0.1),
            FaultSpec(target="/v1", kind="error"),
        ])
        fault = plan.decide("handle", "/v1/knn")
        assert fault is not None and fault.kind == "latency"
        fault = plan.decide("handle", "/v1/range")
        assert fault is not None and fault.kind == "error"

    def test_skip_first_and_max_fires(self):
        plan = FaultPlan([FaultSpec(kind="error", skip_first=2, max_fires=1)])
        decisions = [plan.decide("handle", "/x") for _ in range(5)]
        assert [d is not None for d in decisions] == \
               [False, False, True, False, False]
        assert plan.fired() == 1
        assert plan.stats()[0]["seen"] == 5

    def test_probability_is_seed_deterministic(self):
        def run(seed):
            plan = FaultPlan([FaultSpec(kind="error", probability=0.5)],
                             seed=seed)
            return [plan.decide("handle", "/x") is not None for _ in range(32)]

        assert run(7) == run(7), "same seed replays identically"
        assert run(7) != run(8), "different seeds diverge"
        assert 0 < sum(run(7)) < 32, "the coin actually flips"

    def test_json_forms(self):
        plan = FaultPlan.from_json(
            '[{"operation": "handle", "kind": "latency", "latency": 0.05}]')
        assert len(plan) == 1
        seeded = FaultPlan.from_json(
            '{"seed": 3, "faults": [{"kind": "error"}]}')
        assert seeded.to_dict()["seed"] == 3
        with pytest.raises(ReproError):
            FaultPlan.from_json("not json")
        with pytest.raises(ReproError):
            FaultPlan.from_json('{"seed": 1, "oops": []}')

    def test_from_source_accepts_text_or_path(self, tmp_path):
        assert FaultPlan.from_source(None) is None
        assert FaultPlan.from_source("  ") is None
        inline = FaultPlan.from_source('[{"kind": "error"}]')
        assert inline is not None and len(inline) == 1
        plan_file = tmp_path / "plan.json"
        plan_file.write_text('[{"kind": "latency", "latency": 0.1}]')
        loaded = FaultPlan.from_source(str(plan_file))
        assert loaded is not None and len(loaded) == 1

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", '[{"kind": "error"}]')
        plan = FaultPlan.from_env()
        assert plan is not None and len(plan) == 1


@pytest.fixture
def make_faulty_server(make_base, tmp_path):
    """Boot a live server with a fault plan wired into its HTTP handler."""
    started = []

    def start(plan: FaultPlan):
        live = IngestingIndex(make_base(), tmp_path / "wal.jsonl")
        app = ServerApp(live, checkpoint_path=None, background_compaction=False)
        server = create_server(app, fault_plan=plan).serve_background()
        started.append(server)
        return server, ServerClient(server.url)

    yield start
    for server in started:
        if not server.app.closed:
            server.close(checkpoint=False)


class TestHandlerInjection:
    def test_http_5xx_fault_answers_with_the_injected_status(self,
                                                             make_faulty_server):
        plan = FaultPlan([FaultSpec(operation="handle", target="/v1/knn",
                                    kind="http_5xx", status=503, max_fires=1)])
        _, client = make_faulty_server(plan)
        payload = ServerClient.knn_payload(QUERY_TRIPLES[0], 3)
        with pytest.raises(ServerError) as excinfo:
            client.request("POST", "/v1/knn", payload)
        assert excinfo.value.status == 503
        assert excinfo.value.kind == "InjectedFault"
        # Health checks never matched the target, and the budget is spent:
        # the next query sails through.
        assert client.health()["status"] == "ok"
        assert "matches" in client.request("POST", "/v1/knn", payload)

    def test_latency_fault_delays_but_answers(self, make_faulty_server):
        plan = FaultPlan([FaultSpec(operation="handle", target="/v1/knn",
                                    kind="latency", latency=0.15, max_fires=1)])
        _, client = make_faulty_server(plan)
        started = time.perf_counter()
        result = client.knn(QUERY_TRIPLES[0], 3)
        assert time.perf_counter() - started >= 0.15
        assert "matches" in result

    def test_error_fault_resets_the_connection(self, make_faulty_server):
        plan = FaultPlan([FaultSpec(operation="handle", target="/v1/insert",
                                    kind="error", max_fires=1)])
        _, client = make_faulty_server(plan)
        from server_corpus import INSERT_TRIPLES

        # A non-idempotent write on a reset connection surfaces as an
        # error — never a silent retry (the regression this PR fixes).
        with pytest.raises(ServerError):
            client.insert(INSERT_TRIPLES[0])
        result = client.insert(INSERT_TRIPLES[0])
        assert "seq" in result

    def test_slow_drip_fault_dribbles_the_full_body(self, make_faulty_server):
        plan = FaultPlan([FaultSpec(operation="handle", target="/v1/knn",
                                    kind="slow_drip", latency=0.1, max_fires=1)])
        _, client = make_faulty_server(plan)
        started = time.perf_counter()
        result = client.knn(QUERY_TRIPLES[0], 3)
        assert time.perf_counter() - started >= 0.1
        assert "matches" in result, "dripped, but byte-for-byte complete"

    def test_env_plan_reaches_the_server(self, make_base, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS",
            '[{"operation": "handle", "target": "/v1/range", '
            '"kind": "http_5xx", "status": 599, "max_fires": 1}]')
        live = IngestingIndex(make_base(), tmp_path / "wal_env.jsonl")
        app = ServerApp(live, checkpoint_path=None, background_compaction=False)
        server = create_server(app).serve_background()
        try:
            client = ServerClient(server.url)
            with pytest.raises(ServerError) as excinfo:
                client.range(QUERY_TRIPLES[0], 0.2)
            assert excinfo.value.status == 599
            assert server.fault_plan is not None and server.fault_plan.fired() == 1
        finally:
            server.close(checkpoint=False)
