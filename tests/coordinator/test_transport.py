"""Partition transports: simulated-bus and HTTP scans against the oracle.

The exactness foundation of the whole sharded deployment is that the union
of *partition-local* scans covers every stored point exactly once and
merges to the sequential answer.  These tests pin that, for both transport
implementations, against the guided sequential traversal.
"""

from __future__ import annotations

import pytest

from coordinator_corpus import assert_equivalent
from repro.cluster import SimulatedClusterTransport
from repro.core.knn import ResultSet
from repro.errors import ShardError
from repro.coordinator import ShardTopology


QUERY_COUNT = 12


def _queries(index, triples):
    return [index.embed_query(triple) for triple in triples[:QUERY_COUNT]]


def _merge_knn(scans, k):
    results = ResultSet(k)
    for scan in scans:
        for neighbour in scan.neighbours:
            results.offer(neighbour.point, neighbour.distance)
    return results.neighbours()


class TestSimulatedClusterTransport:
    def test_knn_scan_union_equals_sequential(self, corpus_index):
        index, triples, data_partitions = corpus_index
        transport = SimulatedClusterTransport(index.tree)
        for point in _queries(index, triples):
            sequential = index.tree.k_nearest(point, 5)
            scans = [transport.scan_knn(pid, point, 5) for pid in data_partitions]
            merged = _merge_knn(scans, 5)
            assert_equivalent(
                [index.to_match(n) for n in merged],
                [index.to_match(n) for n in sequential],
                truncated=True,
            )

    def test_range_scan_union_equals_sequential(self, corpus_index):
        index, triples, data_partitions = corpus_index
        transport = SimulatedClusterTransport(index.tree)
        for point in _queries(index, triples):
            sequential = index.tree.range_query(point, 0.2)
            gathered = []
            for pid in data_partitions:
                gathered.extend(transport.scan_range(pid, point, 0.2).neighbours)
            gathered.sort(key=lambda neighbour: neighbour.distance)
            assert_equivalent(
                [index.to_match(n) for n in gathered],
                [index.to_match(n) for n in sequential],
                truncated=False,
            )

    def test_scans_are_charged_to_the_simulated_network(self, corpus_index):
        index, triples, data_partitions = corpus_index
        transport = SimulatedClusterTransport(index.tree)
        before = index.tree.cluster.clock.messages
        transport.scan_knn(data_partitions[0], _queries(index, triples)[0], 3)
        # One SCAN_KNN request plus one SCAN_RESULT reply.
        assert index.tree.cluster.clock.messages == before + 2

    def test_two_transports_share_the_front_end_registration(self, corpus_index):
        """Closing one transport must not break another over the same tree."""
        index, triples, data_partitions = corpus_index
        first = SimulatedClusterTransport(index.tree)
        second = SimulatedClusterTransport(index.tree)
        point = index.embed_query(triples[0])
        first.close()
        first.close()  # idempotent: must not decrement twice
        scan = second.scan_knn(data_partitions[0], point, 3)
        assert scan.neighbours
        second.close()

    def test_scan_counters_cover_the_partition(self, corpus_index):
        index, triples, data_partitions = corpus_index
        transport = SimulatedClusterTransport(index.tree)
        scan = transport.scan_range(data_partitions[0], _queries(index, triples)[0], 10.0)
        # An all-covering radius examines every point of the partition.
        partition = index.tree.partition(data_partitions[0])
        assert scan.points_examined == partition.point_count
        assert len(scan.neighbours) == partition.point_count


class TestHttpShardTransport:
    def test_http_scans_equal_simulated_scans(self, corpus_index, shard_fleet,
                                              make_transport):
        index, triples, data_partitions = corpus_index
        _, topology = shard_fleet
        http = make_transport(topology)
        simulated = SimulatedClusterTransport(index.tree)
        point = _queries(index, triples)[0]
        for pid in data_partitions:
            over_http = http.scan_knn(pid, point, 4)
            in_process = simulated.scan_knn(pid, point, 4)
            assert [n.distance for n in over_http.neighbours] == \
                   [n.distance for n in in_process.neighbours]
            assert [n.point.coordinates for n in over_http.neighbours] == \
                   [n.point.coordinates for n in in_process.neighbours]
            assert over_http.points_examined == in_process.points_examined

    def test_unknown_partition_raises_shard_error(self, shard_fleet, make_transport,
                                                  corpus_index):
        index, triples, _ = corpus_index
        _, topology = shard_fleet
        http = make_transport(topology)
        with pytest.raises(ShardError, match="no shard serves partition 'P99'"):
            http.scan_knn("P99", _queries(index, triples)[0], 3)

    def test_down_shard_raises_shard_error(self, corpus_index, shard_fleet,
                                           make_transport):
        index, triples, data_partitions = corpus_index
        servers, topology = shard_fleet
        victim = data_partitions[0]
        servers[victim].close()
        http = make_transport(topology)
        with pytest.raises(ShardError) as excinfo:
            http.scan_knn(victim, _queries(index, triples)[0], 3)
        assert victim in excinfo.value.details["failed"]

    def test_topology_mismatch_is_detected(self, corpus_index, shard_fleet,
                                           make_transport):
        index, triples, data_partitions = corpus_index
        servers, _ = shard_fleet
        first, second = data_partitions[0], data_partitions[1]
        # Swap the URLs: each entry points at a shard serving the *other* partition.
        wrong = ShardTopology({first: servers[second].url, second: servers[first].url})
        http = make_transport(wrong)
        with pytest.raises(ShardError, match="topology mismatch"):
            http.scan_knn(first, _queries(index, triples)[0], 3)
