"""The write-path retry contract: Idempotency-Key dedup, no blind replays.

The transport-level hazard: a retried ``POST /v1/insert`` whose first
attempt died after the server applied it would double-insert.  The fix has
two halves, both pinned here — the client never blindly retries a write
(only reads, or writes carrying an ``Idempotency-Key``), and the server
deduplicates replayed keys by returning the original response.
"""

from __future__ import annotations

import pytest

from server_corpus import INSERT_TRIPLES, QUERY_TRIPLES
from repro.errors import ServerError
from repro.workloads import ServerClient
from repro.workloads.http_client import _IDEMPOTENT_POST_PATHS


class TestClientRetryPolicy:
    def test_insert_is_not_a_blindly_retryable_path(self):
        assert "/v1/insert" not in _IDEMPOTENT_POST_PATHS
        assert "/v1/knn" in _IDEMPOTENT_POST_PATHS

    def test_insert_marks_idempotent_only_with_a_key(self, make_server,
                                                     monkeypatch):
        _, client = make_server()
        seen = []
        original = ServerClient._round_trip

        def spy(self, method, path, data, headers, *, idempotent):
            seen.append((path, idempotent, headers.get("Idempotency-Key")))
            return original(self, method, path, data, headers,
                            idempotent=idempotent)

        monkeypatch.setattr(ServerClient, "_round_trip", spy)
        client.insert(INSERT_TRIPLES[0])
        client.insert(INSERT_TRIPLES[1], idempotency_key="write-1")
        assert seen == [
            ("/v1/insert", False, None),
            ("/v1/insert", True, "write-1"),
        ]


class TestServerSideDedup:
    def test_replayed_key_returns_the_original_response(self, make_server):
        server, client = make_server()
        first = client.insert(INSERT_TRIPLES[0], idempotency_key="abc")
        assert "deduplicated" not in first
        replay = client.insert(INSERT_TRIPLES[0], idempotency_key="abc")
        assert replay["deduplicated"] is True
        assert replay["seq"] == first["seq"]
        # The replay applied nothing: the WAL grew by exactly one record.
        assert server.app.index.wal.last_seq == first["seq"]

    def test_batch_replay_is_deduplicated_too(self, make_server):
        server, client = make_server()
        first = client.insert_many(INSERT_TRIPLES[:3], idempotency_key="batch")
        replay = client.insert_many(INSERT_TRIPLES[:3], idempotency_key="batch")
        assert replay["deduplicated"] is True
        assert (replay["first_seq"], replay["last_seq"]) == \
               (first["first_seq"], first["last_seq"])
        assert server.app.index.wal.last_seq == first["last_seq"]

    def test_distinct_keys_apply_independently(self, make_server):
        _, client = make_server()
        first = client.insert(INSERT_TRIPLES[0], idempotency_key="k1")
        second = client.insert(INSERT_TRIPLES[1], idempotency_key="k2")
        assert second["seq"] == first["seq"] + 1

    def test_no_key_means_no_dedup(self, make_server):
        _, client = make_server()
        first = client.insert(INSERT_TRIPLES[0])
        again = client.insert(INSERT_TRIPLES[0])
        assert again["seq"] == first["seq"] + 1
        assert "deduplicated" not in again

    def test_keys_are_truncated_to_the_bounded_length(self, make_server):
        from repro.server.context import MAX_VALUE_LENGTH

        _, client = make_server()
        long_key = "x" * (MAX_VALUE_LENGTH + 50)
        first = client.insert(INSERT_TRIPLES[0], idempotency_key=long_key)
        # Any key sharing the first MAX_VALUE_LENGTH chars replays the same
        # entry — the bound is what keeps the replay cache's memory finite.
        replay = client.insert(INSERT_TRIPLES[0],
                               idempotency_key=long_key + "different-tail")
        assert replay["deduplicated"] is True
        assert replay["seq"] == first["seq"]

    def test_failed_insert_is_not_remembered(self, make_server):
        _, client = make_server()
        bad = {"triple": {"not": "a triple"}}
        with pytest.raises(ServerError):
            client.request("POST", "/v1/insert", bad,
                           headers={"Idempotency-Key": "doomed"},
                           idempotent=True)
        # The key was not burned by the failure: a valid retry under the
        # same key applies for real.
        good = client.insert(INSERT_TRIPLES[0], idempotency_key="doomed")
        assert "deduplicated" not in good
        assert "seq" in good

    def test_queries_are_unaffected_by_idempotency_headers(self, make_server):
        _, client = make_server()
        result = client.request(
            "POST", "/v1/knn", ServerClient.knn_payload(QUERY_TRIPLES[0], 3),
            headers={"Idempotency-Key": "irrelevant"})
        assert "matches" in result
