"""Bindings from domain objects onto a :class:`MetricsRegistry`.

The serving stack keeps its hand-rolled, lock-protected counters (they
feed the JSON ``/v1/metrics`` payload and the benchmark reports); the
Prometheus exposition must read the *same* state.  These helpers register
callback-backed instruments that re-read the live objects at scrape time,
so the two formats cannot drift apart.

Everything here is duck-typed on the small read surfaces the objects
already expose (``cache.stats``, ``app.request_counts()``, ...), keeping
``repro.obs`` free of imports from the higher layers.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Mapping

from repro.obs.registry import MetricsRegistry

__all__ = ["bind_cache", "bind_http_requests", "bind_runtime", "bind_wire_bytes"]


def bind_runtime(registry: MetricsRegistry, *, role: str, version: str) -> None:
    """Register process-level series: build info and uptime.

    ``repro_build_info`` carries the role (server / coordinator / shard)
    and library version as labels with a constant value of 1 — the
    conventional way to make build metadata joinable in PromQL.
    """
    registry.gauge(
        "repro_build_info", "Build and role metadata (constant 1).",
        ("role", "version"),
    ).labels(role, version).set(1.0)
    started = time.monotonic()
    registry.gauge(
        "repro_uptime_seconds", "Seconds since the application booted.",
    ).set_function(lambda: time.monotonic() - started)


def bind_http_requests(registry: MetricsRegistry,
                       counts: Callable[[], Mapping[str, int]]) -> None:
    """Expose per-endpoint request totals from a live ``counts()`` reader."""
    registry.counter(
        "repro_http_requests_total", "HTTP requests received, by endpoint.",
        ("endpoint",),
    ).set_callback(lambda: {(endpoint,): float(count)
                            for endpoint, count in counts().items()})


def bind_wire_bytes(registry: MetricsRegistry,
                    totals: Callable[[], Mapping[str, int]]) -> None:
    """Expose HTTP body bytes moved, from a live ``{"in": n, "out": n}`` reader."""
    registry.counter(
        "repro_http_bytes_total", "HTTP body bytes moved, by direction.",
        ("direction",),
    ).set_callback(lambda: {(direction,): float(count)
                            for direction, count in totals().items()})


def bind_cache(registry: MetricsRegistry, cache) -> None:
    """Expose the result cache's counters and sizes at scrape time.

    ``cache`` needs only a ``stats`` property returning an object with
    ``hits`` / ``misses`` / ``evictions`` / ``expirations`` /
    ``invalidations`` / ``promotions`` / ``size`` / ``protected_size``
    attributes — i.e. :class:`repro.service.cache.CacheStats`.
    """
    def reader(attribute: str) -> Callable[[], float]:
        return lambda: float(getattr(cache.stats, attribute))

    counters: Dict[str, str] = {
        "hits": "Result cache hits.",
        "misses": "Result cache misses.",
        "evictions": "Result cache LRU evictions.",
        "expirations": "Result cache TTL expirations.",
        "invalidations": "Result cache generation invalidations.",
        "promotions": "Result cache promotions into the protected segment.",
    }
    for attribute, help_text in counters.items():
        registry.counter(
            f"repro_cache_{attribute}_total", help_text,
        ).set_function(reader(attribute))
    registry.gauge(
        "repro_cache_size", "Entries currently resident in the result cache.",
    ).set_function(reader("size"))
    registry.gauge(
        "repro_cache_protected_size",
        "Entries in the protected (frequently-hit) cache segment.",
    ).set_function(reader("protected_size"))
