"""Tests for the query workload generators."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import QueryWorkload, perturbed_queries, uniform_points, uniform_queries


class TestQueryWorkload:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            QueryWorkload(queries=(), k=3)
        queries = uniform_queries(3, 2).queries
        with pytest.raises(WorkloadError):
            QueryWorkload(queries=queries, k=0)
        with pytest.raises(WorkloadError):
            QueryWorkload(queries=queries, radius=-0.1)

    def test_len_and_iteration(self):
        workload = uniform_queries(7, 2, k=3, radius=0.2)
        assert len(workload) == 7
        assert len(list(workload)) == 7
        assert workload.k == 3 and workload.radius == 0.2


class TestUniformQueries:
    def test_dimensions_and_determinism(self):
        first = uniform_queries(5, 3, seed=9)
        second = uniform_queries(5, 3, seed=9)
        assert first.queries == second.queries
        assert all(q.dimensions == 3 for q in first)

    def test_invalid_count(self):
        with pytest.raises(WorkloadError):
            uniform_queries(0, 2)


class TestPerturbedQueries:
    def test_queries_stay_near_the_data(self):
        data = uniform_points(100, 2, seed=1)
        workload = perturbed_queries(data, 20, jitter=0.01, seed=2)
        assert len(workload) == 20
        for query in workload:
            nearest = min(point.distance_to(query) for point in data)
            assert nearest <= 0.05

    def test_empty_data_rejected(self):
        with pytest.raises(WorkloadError):
            perturbed_queries([], 5)

    def test_invalid_count_rejected(self):
        data = uniform_points(10, 2)
        with pytest.raises(WorkloadError):
            perturbed_queries(data, 0)
