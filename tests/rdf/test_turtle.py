"""Tests for the Turtle-like parser and serialiser."""

import pytest

from repro.errors import ParseError
from repro.rdf import (
    Concept,
    Literal,
    NamespaceRegistry,
    Triple,
    parse_term,
    parse_turtle,
    serialise_term,
    serialise_turtle,
)

PAPER_LISTING = """
# The resources of Section III-A
('OBSW001', Fun:acquire_in, InType:pre-launch phase)
('OBSW001', Fun:accept_cmd, CmdType:start-up)
('OBSW001', Fun:send_msg, MsgType:power amplifier)
"""


class TestParseTerm:
    def test_quoted_literal(self):
        assert parse_term("'OBSW001'") == Literal("OBSW001")

    def test_prefixed_concept_with_spaces(self):
        assert parse_term("InType:pre-launch phase") == Concept("pre-launch phase", "InType")

    def test_bare_concept(self):
        assert parse_term("start-up") == Concept("start-up")

    def test_empty_term_rejected(self):
        with pytest.raises(ParseError):
            parse_term("  ")


class TestParseTurtle:
    def test_paper_listing_parses_in_order(self):
        triples = parse_turtle(PAPER_LISTING)
        assert len(triples) == 3
        assert triples[0] == Triple(
            Literal("OBSW001"), Concept("acquire_in", "Fun"), Concept("pre-launch phase", "InType")
        )
        assert triples[1].object == Concept("start-up", "CmdType")
        assert triples[2].predicate == Concept("send_msg", "Fun")

    def test_comments_and_blank_lines_skipped(self):
        text = "# only a comment\n\n(a, b, c)\n"
        assert len(parse_turtle(text)) == 1

    def test_prefix_directive_registers_namespace(self):
        registry = NamespaceRegistry()
        parse_turtle("@prefix Fun: http://example.org/fun .\n(a, Fun:b, c)\n", registry=registry)
        assert registry.namespace_of("Fun") == "http://example.org/fun"

    def test_unknown_prefix_rejected_when_required(self):
        registry = NamespaceRegistry()
        with pytest.raises(ParseError):
            parse_turtle("(a, Nope:b, c)", registry=registry, require_known_prefixes=True)

    def test_known_prefix_accepted_when_required(self):
        registry = NamespaceRegistry({"Fun": "fun"})
        triples = parse_turtle("(a, Fun:b, c)", registry=registry, require_known_prefixes=True)
        assert triples[0].predicate == Concept("b", "Fun")

    def test_malformed_line_reports_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            parse_turtle("(a, b, c)\nnot a triple\n")
        assert excinfo.value.line == 2

    def test_wrong_arity_rejected(self):
        with pytest.raises(ParseError):
            parse_turtle("(a, b)")
        with pytest.raises(ParseError):
            parse_turtle("(a, b, c, d)")

    def test_unterminated_literal_rejected(self):
        with pytest.raises(ParseError):
            parse_turtle("('abc, d, e)")

    def test_commas_inside_literals_are_preserved(self):
        triples = parse_turtle("('a, with comma', p, o)")
        assert triples[0].subject == Literal("a, with comma")


class TestSerialise:
    def test_roundtrip(self):
        triples = parse_turtle(PAPER_LISTING)
        text = serialise_turtle(triples)
        assert parse_turtle(text) == triples

    def test_serialise_term_literal_and_concept(self):
        assert serialise_term(Literal("x")) == "'x'"
        assert serialise_term(Concept("b", "A")) == "A:b"

    def test_serialise_with_prefixes(self):
        registry = NamespaceRegistry({"Fun": "fun-ns"})
        text = serialise_turtle([Triple.of("a", "Fun:b", "c")], registry)
        assert "@prefix Fun: fun-ns ." in text
        assert "(a, Fun:b, c)" in text

    def test_empty_input_serialises_to_empty_string(self):
        assert serialise_turtle([]) == ""
