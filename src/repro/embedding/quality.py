"""Embedding-quality diagnostics.

FastMap is a lossy embedding: the Euclidean distance in the target space is
only an approximation of the original semantic distance.  These diagnostics
quantify the loss, which matters for the effectiveness experiment (Fig. 8)
because k-NN in the embedded space can return a slightly different result
set than k-NN under the raw triple distance.

* :func:`stress` — Kruskal's stress-1 between original and embedded
  distances over a sample of pairs.
* :func:`distortion` — worst-case expansion/contraction ratios.
* :func:`neighbourhood_overlap` — average overlap between the k-NN sets
  computed with the original distance and with the embedded distance.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Callable, Dict, Hashable, List, Sequence, Tuple, TypeVar

import numpy as np

from repro.errors import EmbeddingError
from repro.embedding.fastmap import FastMapSpace

__all__ = ["stress", "distortion", "neighbourhood_overlap", "sample_pairs"]

ObjectT = TypeVar("ObjectT", bound=Hashable)
DistanceFunction = Callable[[ObjectT, ObjectT], float]


def sample_pairs(count: int, max_pairs: int, *, seed: int = 0) -> List[Tuple[int, int]]:
    """Sample up to ``max_pairs`` distinct index pairs from ``count`` objects."""
    if count < 2:
        raise EmbeddingError("need at least two objects to sample pairs")
    all_pairs = count * (count - 1) // 2
    rng = random.Random(seed)
    if all_pairs <= max_pairs:
        return list(itertools.combinations(range(count), 2))
    pairs: set[Tuple[int, int]] = set()
    while len(pairs) < max_pairs:
        i = rng.randrange(count)
        j = rng.randrange(count)
        if i == j:
            continue
        pairs.add((min(i, j), max(i, j)))
    return sorted(pairs)


def _pair_distances(space: FastMapSpace[ObjectT], distance: DistanceFunction,
                    pairs: Sequence[Tuple[int, int]]) -> Tuple[np.ndarray, np.ndarray]:
    original = np.empty(len(pairs))
    embedded = np.empty(len(pairs))
    for k, (i, j) in enumerate(pairs):
        original[k] = distance(space.objects[i], space.objects[j])
        embedded[k] = float(np.linalg.norm(space.coordinates[i] - space.coordinates[j]))
    return original, embedded


def stress(space: FastMapSpace[ObjectT], distance: DistanceFunction,
           *, max_pairs: int = 2000, seed: int = 0) -> float:
    """Kruskal stress-1: ``sqrt(sum (d - d̂)^2 / sum d^2)`` over sampled pairs.

    0 means a perfect embedding; values below ~0.2 are usually considered
    acceptable for retrieval purposes.
    """
    pairs = sample_pairs(len(space), max_pairs, seed=seed)
    original, embedded = _pair_distances(space, distance, pairs)
    denominator = float(np.sum(original**2))
    if denominator == 0:
        return 0.0
    return math.sqrt(float(np.sum((original - embedded) ** 2)) / denominator)


def distortion(space: FastMapSpace[ObjectT], distance: DistanceFunction,
               *, max_pairs: int = 2000, seed: int = 0) -> Dict[str, float]:
    """Expansion/contraction statistics of the embedding over sampled pairs.

    Returns a mapping with ``max_expansion`` (embedded / original),
    ``max_contraction`` (original / embedded) and ``mean_absolute_error``.
    Pairs with zero original distance are skipped for the ratios.
    """
    pairs = sample_pairs(len(space), max_pairs, seed=seed)
    original, embedded = _pair_distances(space, distance, pairs)
    expansion = 0.0
    contraction = 0.0
    for orig, emb in zip(original, embedded):
        if orig > 0 and emb > 0:
            expansion = max(expansion, emb / orig)
            contraction = max(contraction, orig / emb)
    return {
        "max_expansion": expansion,
        "max_contraction": contraction,
        "mean_absolute_error": float(np.mean(np.abs(original - embedded))),
    }


def neighbourhood_overlap(space: FastMapSpace[ObjectT], distance: DistanceFunction,
                          *, k: int = 5, sample_size: int = 50, seed: int = 0) -> float:
    """Average overlap of k-NN sets under the original vs. the embedded distance.

    For each sampled query object, compute its ``k`` nearest neighbours with
    the original distance and with the Euclidean embedded distance, and
    report the mean Jaccard-style overlap ``|A ∩ B| / k``.
    """
    n = len(space)
    if n < k + 1:
        raise EmbeddingError(f"need at least {k + 1} objects for k={k} overlap")
    rng = random.Random(seed)
    query_indices = rng.sample(range(n), min(sample_size, n))
    total_overlap = 0.0
    coordinates = space.coordinates
    for query in query_indices:
        original_order = sorted(
            (i for i in range(n) if i != query),
            key=lambda i: distance(space.objects[query], space.objects[i]),
        )[:k]
        deltas = coordinates - coordinates[query]
        embedded_distances = np.linalg.norm(deltas, axis=1)
        embedded_distances[query] = np.inf
        embedded_order = list(np.argsort(embedded_distances)[:k])
        total_overlap += len(set(original_order) & set(int(i) for i in embedded_order)) / k
    return total_overlap / len(query_indices)
