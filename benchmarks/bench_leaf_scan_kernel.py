"""Leaf-scan kernels — scalar per-point loop vs vectorized NumPy batch scan.

Every search bottoms out in leaf-bucket scans, so this is the hot path of
the serving QPS and mixed-throughput numbers.  The sweep times, per bucket
size and dimensionality:

* ``leaf_cold`` — one k-NN scan of a single leaf with an *empty* result set
  (no radius pruning possible; worst case for the vectorized kernel),
* ``leaf_warm`` — the same scan with a *full* result set (the backward-visit
  case: the squared-radius pre-filter drops most of the bucket before any
  Python-level work),
* ``tree_knn`` / ``tree_range`` — whole searches over a balanced KD-tree,
  i.e. leaf scans in their natural mix of cold and warm visits,

each with ``scan_kernel="scalar"`` and ``"numpy"``.  Results are asserted
tie-insensitive-identical between the kernels as part of the run.

Quick mode (``LEAF_SCAN_QUICK=1``, used by the CI perf-smoke job) shrinks
the sweep and only asserts the vectorized kernel is not slower at
``bucket_size >= 16``; the full report additionally asserts the >= 2x
speedup at ``bucket_size >= 16``, dims 8-16 that motivated the kernel layer.
"""

from __future__ import annotations

import os
import random
import time
from typing import Dict, List

import pytest

from repro.core import kernels
from repro.core.kdtree import KDTree
from repro.core.knn import KSearchState
from repro.core.node import Node
from repro.core.point import LabeledPoint

from .conftest import write_report

QUICK = os.environ.get("LEAF_SCAN_QUICK", "") not in ("", "0")

BUCKET_SIZES = [16, 64] if QUICK else [4, 16, 64]
DIMS = [8] if QUICK else [2, 8, 16]
TREE_POINTS = 1024 if QUICK else 2048
LEAF_REPS = 400 if QUICK else 2000
TREE_REPS = 60 if QUICK else 200
ROUNDS = 3
QUERY_POOL = 64
K = 8


def _points(count: int, dim: int, seed: int = 7) -> List[LabeledPoint]:
    rng = random.Random(seed)
    return [
        LabeledPoint.of([rng.random() for _ in range(dim)], label=index)
        for index in range(count)
    ]


def _queries(dim: int, seed: int = 11) -> List[LabeledPoint]:
    rng = random.Random(seed)
    return [
        LabeledPoint.of([rng.random() for _ in range(dim)])
        for _ in range(QUERY_POOL)
    ]


def _best_of(rounds: int, reps: int, body) -> float:
    """Per-iteration seconds, best of ``rounds`` timed batches of ``reps``."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        for rep in range(reps):
            body(rep)
        best = min(best, (time.perf_counter() - started) / reps)
    return best


def _leaf_scan_us(bucket_size: int, dim: int, kernel: str, *, warm: bool) -> float:
    """Micro-benchmark one leaf scan (fresh search state per scan).

    ``warm=False`` scans an in-range bucket with an *empty* result set (the
    forward-phase fill-up, worst case for vectorization: no pruning
    possible).  ``warm=True`` scans an out-of-radius bucket with a *full*
    result set — the dominant backward-visit case, where the squared-radius
    pre-filter drops the whole bucket before any Python-level work.
    """
    shift = 3.0 if warm else 0.0
    node = Node(bucket=[
        LabeledPoint.of([value + shift for value in point.coordinates],
                        label=point.label)
        for point in _points(bucket_size, dim)
    ])
    node.bucket_matrix()  # the cache is built once per bucket, not per scan
    queries = _queries(dim)
    # For the warm case, pre-fill each state's result set from a sibling
    # in-range bucket so the scan under test runs against a finite radius.
    sibling = Node(bucket=_points(bucket_size, dim, seed=23))
    sibling.bucket_matrix()
    k = min(K, bucket_size)

    def body(rep: int) -> None:
        state = KSearchState(query=queries[rep % QUERY_POOL], k=k)
        if warm:
            kernels.knn_scan_node(state, sibling, kernel)
        kernels.knn_scan_node(state, node, kernel)

    overhead = 0.0
    if warm:
        # Subtract the state setup + sibling scan so only the scan under
        # test is charged.
        def setup_only(rep: int) -> None:
            state = KSearchState(query=queries[rep % QUERY_POOL], k=k)
            kernels.knn_scan_node(state, sibling, kernel)

        overhead = _best_of(ROUNDS, LEAF_REPS, setup_only)
    return max(_best_of(ROUNDS, LEAF_REPS, body) - overhead, 1e-9) * 1e6


def _calibrated_radius(points, query) -> float:
    """A radius with comparable selectivity at every dimensionality.

    A fixed radius is hit-everything in 2-D and hit-nothing in 16-D; the
    distance to the 20th neighbour keeps every series querying a ball with
    the same expected result size.
    """
    from repro.baselines.linear_scan import LinearScanIndex

    return LinearScanIndex(points, scan_kernel="scalar").k_nearest(query, 20)[-1].distance


def _tree_search_us(bucket_size: int, dim: int, kernel: str) -> Dict[str, float]:
    """Whole k-NN / range searches over a balanced tree with one kernel."""
    points = _points(TREE_POINTS, dim)
    queries = _queries(dim)
    tree = KDTree.build_balanced(points, bucket_size=bucket_size, scan_kernel=kernel)
    radius = _calibrated_radius(points, queries[0])
    tree.k_nearest(queries[0], K)
    tree.range_query(queries[0], radius)
    knn = _best_of(ROUNDS, TREE_REPS, lambda rep: tree.k_nearest(queries[rep % QUERY_POOL], K))
    rng = _best_of(ROUNDS, TREE_REPS,
                   lambda rep: tree.range_query(queries[rep % QUERY_POOL], radius))
    return {"knn_us": knn * 1e6, "range_us": rng * 1e6}


def _assert_equivalent(bucket_size: int, dim: int) -> None:
    """Both kernels must answer identically (tie-insensitive) on this config."""
    points = _points(TREE_POINTS, dim)
    queries = _queries(dim)[:8]
    scalar_tree = KDTree.build_balanced(points, bucket_size=bucket_size,
                                        scan_kernel="scalar")
    numpy_tree = KDTree.build_balanced(points, bucket_size=bucket_size,
                                       scan_kernel="numpy")
    for query in queries:
        scalar_answer = [(round(n.distance, 9), n.point.label)
                         for n in scalar_tree.k_nearest(query, K)]
        numpy_answer = [(round(n.distance, 9), n.point.label)
                        for n in numpy_tree.k_nearest(query, K)]
        assert sorted(scalar_answer) == sorted(numpy_answer)


# -- pytest-benchmark cases ---------------------------------------------------------------

@pytest.mark.benchmark(group="leaf-scan-kernel")
@pytest.mark.parametrize("kernel", ["scalar", "numpy"])
def test_benchmark_tree_knn(benchmark, kernel):
    tree = KDTree.build_balanced(_points(TREE_POINTS, 8), bucket_size=16,
                                 scan_kernel=kernel)
    queries = _queries(8)
    position = iter(range(10**9))
    benchmark(lambda: tree.k_nearest(queries[next(position) % QUERY_POOL], K))


# -- the report ---------------------------------------------------------------------------

def test_report_leaf_scan_kernel(results_dir):
    from repro.evaluation import Experiment

    experiment = Experiment(
        experiment_id="leaf_scan",
        description=(
            "Leaf-scan kernels: scalar per-point loop vs vectorized NumPy batch "
            f"scan. leaf_cold/leaf_warm = one bucket scan (empty / full result "
            f"set, k={K}); tree_knn/tree_range = whole searches over a balanced "
            f"{TREE_POINTS}-point KD-tree (range radius calibrated to the "
            "20-NN distance so selectivity is comparable across dims). "
            "x = bucket size; one series per dimensionality. Answers are "
            "asserted identical between kernels."
        ),
        swept_parameter="bucket_size",
    )
    for dim in DIMS:
        for bucket_size in BUCKET_SIZES:
            _assert_equivalent(bucket_size, dim)
            metrics: Dict[str, float] = {}
            for warm in (False, True):
                label = "leaf_warm" if warm else "leaf_cold"
                scalar = _leaf_scan_us(bucket_size, dim, "scalar", warm=warm)
                vector = _leaf_scan_us(bucket_size, dim, "numpy", warm=warm)
                metrics[f"{label}_scalar_us"] = scalar
                metrics[f"{label}_numpy_us"] = vector
                metrics[f"{label}_speedup"] = scalar / vector
            scalar_tree = _tree_search_us(bucket_size, dim, "scalar")
            numpy_tree = _tree_search_us(bucket_size, dim, "numpy")
            metrics["tree_knn_scalar_us"] = scalar_tree["knn_us"]
            metrics["tree_knn_numpy_us"] = numpy_tree["knn_us"]
            metrics["tree_knn_speedup"] = scalar_tree["knn_us"] / numpy_tree["knn_us"]
            metrics["tree_range_scalar_us"] = scalar_tree["range_us"]
            metrics["tree_range_numpy_us"] = numpy_tree["range_us"]
            metrics["tree_range_speedup"] = (
                scalar_tree["range_us"] / numpy_tree["range_us"]
            )
            experiment.record(f"dim{dim}", float(bucket_size), **metrics)

    write_report(results_dir, experiment, [
        "leaf_cold_speedup", "leaf_warm_speedup",
        "tree_knn_speedup", "tree_range_speedup",
        "tree_knn_scalar_us", "tree_knn_numpy_us",
    ])

    # Perf-smoke shape (always): the vectorized kernel must not be slower
    # than the scalar path at bucket_size >= 16.
    for dim in DIMS:
        series = experiment.series[f"dim{dim}"]
        for x, knn_speedup, range_speedup in zip(
                series.xs(), series.values("tree_knn_speedup"),
                series.values("tree_range_speedup")):
            if x >= 16:
                assert knn_speedup >= 1.0, (
                    f"numpy kernel slower than scalar: k-NN {knn_speedup:.2f}x "
                    f"at bucket_size={x:.0f}, dim={dim}"
                )
            # Below RANGE_VECTOR_MIN both kernels run the identical scalar
            # loop for range scans (hybrid cutoff), so a speedup bound there
            # would assert on pure timing noise.
            if x >= kernels.RANGE_VECTOR_MIN:
                assert range_speedup >= 1.0, (
                    f"numpy kernel slower than scalar: range {range_speedup:.2f}x "
                    f"at bucket_size={x:.0f}, dim={dim}"
                )

    # Full-report shape: the >= 2x win that motivated the kernel layer, for
    # leaf scans across the tree at bucket_size >= 16, dims 8-16.
    if not QUICK:
        for dim in (8, 16):
            series = experiment.series[f"dim{dim}"]
            for x, speedup in zip(series.xs(), series.values("tree_knn_speedup")):
                if x >= 16:
                    assert speedup >= 2.0, (
                        f"expected >= 2x k-NN speedup, got {speedup:.2f}x at "
                        f"bucket_size={x:.0f}, dim={dim}"
                    )
