"""Tests for RDF terms (concepts, literals, variables) and their parsing."""

import pytest

from repro.errors import TripleError
from repro.rdf import Concept, Literal, Variable, term_from_text


class TestConcept:
    def test_qname_with_prefix(self):
        assert Concept("accept_cmd", "Fun").qname == "Fun:accept_cmd"

    def test_qname_default_vocabulary(self):
        assert Concept("OBSW001").qname == "OBSW001"

    def test_empty_name_rejected(self):
        with pytest.raises(TripleError):
            Concept("")

    def test_equality_is_value_based(self):
        assert Concept("x", "A") == Concept("x", "A")
        assert Concept("x", "A") != Concept("x", "B")
        assert Concept("x") != Concept("y")

    def test_hashable_as_dict_key(self):
        mapping = {Concept("x", "A"): 1}
        assert mapping[Concept("x", "A")] == 1

    def test_with_prefix_returns_new_concept(self):
        original = Concept("x", "A")
        renamed = original.with_prefix("B")
        assert renamed.prefix == "B" and renamed.name == "x"
        assert original.prefix == "A"

    def test_str_is_qname(self):
        assert str(Concept("start-up", "CmdType")) == "CmdType:start-up"


class TestLiteral:
    def test_default_datatype_is_string(self):
        assert Literal("hello").datatype == "string"

    def test_numeric_value_normalised_to_string(self):
        assert Literal(42).value == "42"

    def test_equality(self):
        assert Literal("a") == Literal("a")
        assert Literal("a") != Literal("b")
        assert Literal("1", "integer") != Literal("1", "string")

    def test_str_quotes_the_value(self):
        assert str(Literal("abc")) == '"abc"'


class TestVariable:
    def test_empty_name_rejected(self):
        with pytest.raises(TripleError):
            Variable("")

    def test_str_has_question_mark(self):
        assert str(Variable("req")) == "?req"


class TestTermFromText:
    def test_double_quoted_literal(self):
        assert term_from_text('"hello world"') == Literal("hello world")

    def test_single_quoted_literal(self):
        assert term_from_text("'start-up'") == Literal("start-up")

    def test_variable(self):
        assert term_from_text("?x") == Variable("x")

    def test_prefixed_concept(self):
        assert term_from_text("Fun:accept_cmd") == Concept("accept_cmd", "Fun")

    def test_bare_concept(self):
        assert term_from_text("OBSW001") == Concept("OBSW001")

    def test_whitespace_is_stripped(self):
        assert term_from_text("  OBSW001  ") == Concept("OBSW001")

    def test_empty_text_rejected(self):
        with pytest.raises(TripleError):
            term_from_text("   ")

    def test_prefix_without_local_name_rejected(self):
        with pytest.raises(TripleError):
            term_from_text("Fun:")
