""":class:`IngestingIndex` — a built SemTree that absorbs a live write stream.

PR 1's serving layer required quiescing every query to mutate the index.
This class removes that rule with the standard LSM recipe on top of
:class:`~repro.core.semtree.SemTreeIndex`:

* **inserts** append to a :class:`~repro.ingest.wal.WriteAheadLog` (crash
  durability) and land in a :class:`~repro.ingest.delta.DeltaIndex` — an
  in-memory linear-scan segment that is immediately queryable;
* **reads** answer from tree ∪ delta with exact merge semantics (identical
  to a from-scratch rebuild) and run under the *read* side of a
  :class:`~repro.ingest.rwlock.ReadWriteLock`, so they interleave freely
  with inserts;
* **compaction** folds the delta into the distributed tree under the
  *write* side of the lock, bumping the index generation exactly once per
  fold — the serving layer's result cache invalidates at compaction
  granularity, not per insert;
* **checkpoints** snapshot the tree (with the applied WAL sequence number)
  so recovery is snapshot + WAL-tail replay.

The class implements the same search protocol as
:class:`~repro.core.semtree.SemTreeIndex` (``generation`` / ``embed_query``
/ ``search_k_nearest`` / ``search_range`` / ``overlay_matches``), so a
:class:`~repro.service.engine.QueryEngine` serves it unchanged: cached
entries hold the cache-stable tree side of an answer and the engine overlays
the live delta on every result it returns.
"""

from __future__ import annotations

import pathlib
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import SimulatedCluster
from repro.core.point import LabeledPoint
from repro.core.semtree import SearchOutcome, SemanticMatch, SemTreeIndex
from repro.errors import IndexError_
from repro.ingest.delta import DeltaIndex
from repro.ingest.rwlock import ReadWriteLock
from repro.ingest.wal import WalRecord, WriteAheadLog
from repro.rdf.triple import Triple
from repro.semantics.triple_distance import TripleDistance
from repro.service.metrics import IngestMetrics
from repro.service.snapshot import load_index, save_index, snapshot_wal_seq

__all__ = ["IngestingIndex"]

#: Default number of delta points that triggers a compaction.
DEFAULT_COMPACTION_THRESHOLD = 256


class IngestingIndex:
    """A live-ingesting view over one *built* :class:`SemTreeIndex`.

    Parameters
    ----------
    base:
        The built index (its tree and FastMap space serve the stable side).
    wal:
        A :class:`WriteAheadLog` or a path to open one at.
    applied_seq:
        The highest WAL sequence number already represented by ``base``
        (0 for a fresh log).  Records after it are replayed into the delta at
        construction, which makes the constructor double as crash recovery
        when the WAL is non-empty.
    compaction_threshold:
        Delta size at which :meth:`should_compact` turns true.
    metrics:
        Optional externally-owned :class:`IngestMetrics`.
    vocabulary_hints:
        Optional ``{"actors": [...], "parameters": {prefix: [...]}}``
        description of the vocabularies the semantic distance was built
        from; persisted into every checkpoint so a rebooting process can
        rebuild the exact same distance
        (:func:`repro.server.bootstrap.derive_distance`).
    """

    def __init__(self, base: SemTreeIndex, wal: WriteAheadLog | str | pathlib.Path, *,
                 applied_seq: int = 0,
                 compaction_threshold: int = DEFAULT_COMPACTION_THRESHOLD,
                 metrics: IngestMetrics | None = None,
                 vocabulary_hints: Optional[Dict[str, object]] = None):
        if not base.is_built:
            raise IndexError_("an IngestingIndex needs a built base index")
        if compaction_threshold < 1:
            raise IndexError_(
                f"compaction_threshold must be >= 1, got {compaction_threshold}"
            )
        self.base = base
        self.wal = wal if isinstance(wal, WriteAheadLog) else WriteAheadLog(wal)
        self.compaction_threshold = compaction_threshold
        self.vocabulary_hints = vocabulary_hints
        self.metrics = metrics or IngestMetrics()
        self.delta = DeltaIndex(scan_kernel=base.config.scan_kernel)
        self._lock = ReadWriteLock()
        # Serialises WAL-append + delta-add so delta order equals sequence
        # order and a drain always covers a gapless prefix of the stream.
        self._insert_lock = threading.Lock()
        # Embedding exercises the semantic-distance memo caches, which are
        # plain dicts; one lock keeps inserter threads and the engine's
        # planning thread from racing in them.
        self._embed_lock = threading.Lock()
        self._applied_seq = applied_seq
        # A checkpoint may have truncated the log to empty; numbering must
        # continue after the snapshot's applied sequence regardless.
        self.wal.advance_to(applied_seq)
        self._listeners: List = []
        replayed = 0
        for record in self.wal.replay(after=applied_seq):
            self._apply_record(record)
            replayed += 1
        if replayed:
            self.metrics.record_replay(replayed)

    # -- recovery -----------------------------------------------------------------------

    @classmethod
    def recover(cls, snapshot_path: str | pathlib.Path,
                wal_path: str | pathlib.Path, distance: TripleDistance, *,
                cluster: SimulatedCluster | None = None,
                compaction_threshold: int = DEFAULT_COMPACTION_THRESHOLD,
                metrics: IngestMetrics | None = None) -> "IngestingIndex":
        """Restore an ingesting index from a checkpoint snapshot + WAL tail.

        The snapshot rebuilds the tree exactly as checkpointed; every WAL
        record after the snapshot's ``wal_seq`` is re-projected into the
        delta.  The recovered index answers queries identically to the
        process that died.
        """
        applied_seq = snapshot_wal_seq(snapshot_path)
        base = load_index(snapshot_path, distance, cluster=cluster)
        return cls(base, wal_path, applied_seq=applied_seq,
                   compaction_threshold=compaction_threshold, metrics=metrics)

    def _apply_record(self, record: WalRecord) -> None:
        point = self._project(record.triple)
        if record.document_id is not None:
            # Idempotent on the replay path: a checkpoint snapshot persists
            # the provenance map as of save time, which covers the WAL-tail
            # records too (insert registers provenance before returning, and
            # the snapshot is taken under the write lock).  Re-registering
            # here would duplicate those document ids and make recovered
            # matches unequal to the pre-crash ones.  Records appended after
            # the snapshot (or replayed over a freshly rebuilt base) are not
            # in the map yet and do get registered.
            if record.document_id not in self.base.documents_of(record.triple):
                self.base.register_provenance(record.triple, record.document_id)
        self.delta.add(point, record.seq)

    # -- the write path -----------------------------------------------------------------

    def insert(self, triple: Triple, *, document_id: str | None = None) -> int:
        """Log, project and stage one triple; returns its WAL sequence number.

        The triple is queryable the moment this returns.  Inserts run as
        *readers* of the tree lock: any number of them interleave with
        queries, and only an in-flight compaction (a writer) briefly delays
        them.
        """
        with self._lock.read():
            with self._insert_lock:
                seq = self.wal.append(triple, document_id=document_id)
                point = self._project(triple)
                if document_id is not None:
                    self.base.register_provenance(triple, document_id)
                self.delta.add(point, seq)
        self.metrics.record_insert()
        for listener in self._listeners:
            listener()
        return seq

    def insert_many(self, triples, *, document_id: str | None = None) -> int:
        """Insert a batch of triples; returns the last sequence number."""
        seq = self.wal.last_seq
        for triple in triples:
            seq = self.insert(triple, document_id=document_id)
        return seq

    def add_insert_listener(self, listener) -> None:
        """Register a zero-argument callable invoked after every insert.

        The background compactor uses this to wake without polling.
        Listeners run on the inserter thread and must be cheap and
        exception-free.
        """
        self._listeners.append(listener)

    def _project(self, triple: Triple) -> LabeledPoint:
        with self._embed_lock:
            return self.base.embed_query(triple)

    # -- compaction ---------------------------------------------------------------------

    def should_compact(self) -> bool:
        """True when the delta has reached the compaction threshold."""
        return len(self.delta) >= self.compaction_threshold

    def compact(self) -> int:
        """Fold the current delta into the distributed tree (exclusive).

        Takes the write lock, drains the delta, inserts every point into the
        tree and bumps the generation exactly once.  Returns the number of
        points folded (0 when the delta was empty — and then nothing moves,
        the generation included).
        """
        started = time.perf_counter()
        with self._lock.write():
            points, through_seq = self.delta.drain()
            if not points:
                return 0
            folded = self.base.absorb_points(points)
            self._applied_seq = through_seq
        self.metrics.record_compaction(folded, time.perf_counter() - started)
        return folded

    # -- checkpoints --------------------------------------------------------------------

    def checkpoint(self, snapshot_path: str | pathlib.Path, *,
                   compact_first: bool = True, truncate_wal: bool = True) -> int:
        """Write a recovery point: snapshot the tree, optionally shrink the WAL.

        With the defaults the delta is folded first (so the snapshot covers
        everything inserted so far) and the WAL drops the records the
        snapshot now covers.  With ``compact_first=False`` the snapshot
        covers the tree only and recovery replays the delta's records from
        the WAL tail.  Returns the ``wal_seq`` recorded in the snapshot.
        """
        if compact_first:
            self.compact()
        with self._lock.write():
            applied = self._applied_seq
            save_index(self.base, snapshot_path, wal_seq=applied,
                       vocabulary=self.vocabulary_hints)
        if truncate_wal:
            self.wal.truncate_through(applied)
        return applied

    # -- the search protocol (served by QueryEngine) ------------------------------------

    @property
    def generation(self) -> int:
        """The *tree* generation: stable across inserts, bumped per compaction."""
        return self.base.generation

    def embed_query(self, triple: Triple) -> LabeledPoint:
        """Project a query triple (serialised against inserter-side embedding)."""
        return self._project(triple)

    def search_k_nearest(self, point: LabeledPoint, k: int) -> SearchOutcome:
        """The cache-stable side of a k-NN read: a tree-only search.

        The matches must be completed with :meth:`overlay_matches` before
        being served — the engine does exactly that, for fresh executions and
        cache hits alike.
        """
        with self._lock.read():
            generation = self.base.generation
            state = self.base.tree.k_nearest_state(point, k)
            matches = tuple(self.base.to_match(n) for n in state.results.neighbours())
        return SearchOutcome(
            matches=matches,
            visited_partitions=tuple(state.visited_partition_ids),
            nodes_visited=state.nodes_visited,
            points_examined=state.points_examined,
            generation=generation,
            cost=state.cost,
        )

    def search_range(self, point: LabeledPoint, radius: float) -> SearchOutcome:
        """The cache-stable side of a range read: a tree-only search."""
        with self._lock.read():
            generation = self.base.generation
            state = self.base.tree.range_query_state(point, radius)
            matches = tuple(self.base.to_match(n) for n in state.sorted_results())
        return SearchOutcome(
            matches=matches,
            visited_partitions=tuple(state.visited_partition_ids),
            nodes_visited=state.nodes_visited,
            points_examined=state.points_examined,
            generation=generation,
            cost=state.cost,
        )

    def overlay_matches(self, kind: str, point: LabeledPoint, parameter: float,
                        matches: Tuple[SemanticMatch, ...],
                        generation: int) -> Optional[Tuple[SemanticMatch, ...]]:
        """Merge the live delta into tree-side matches computed at ``generation``.

        Returns ``None`` when the tree has moved past ``generation`` (a
        compaction landed since the matches were computed): the delta no
        longer holds the folded points, so the merge would drop them — the
        caller must redo the search.  ``parameter`` is ``k`` for k-NN merges
        and the radius for range merges; the merged list is sorted by
        distance with ties keeping tree results first, exactly like a
        rebuilt index's own result order.
        """
        with self._lock.read():
            if self.base.generation != generation:
                return None
            if kind == "knn":
                # The merged top-k can hold at most k delta points, so the
                # delta only has to surface its own k closest.
                extra = self.delta.k_nearest(point, int(parameter))
            else:
                extra = self.delta.neighbours_within(point, parameter)
        if not extra:
            return tuple(matches)
        merged = list(matches) + [self.base.to_match(n) for n in extra]
        merged.sort(key=lambda match: match.distance)
        if kind == "knn":
            merged = merged[:int(parameter)]
        return tuple(merged)

    # -- direct (engine-less) queries ---------------------------------------------------

    def k_nearest(self, query: Triple, k: int) -> List[SemanticMatch]:
        """The ``k`` closest stored triples, merged across tree and delta."""
        return self._merged(("knn", k), self.embed_query(query))

    def range_query(self, query: Triple, radius: float) -> List[SemanticMatch]:
        """Every stored triple within ``radius``, merged across tree and delta."""
        return self._merged(("range", radius), self.embed_query(query))

    def _merged(self, query: Tuple[str, float], point: LabeledPoint) -> List[SemanticMatch]:
        kind, parameter = query
        while True:
            if kind == "knn":
                outcome = self.search_k_nearest(point, int(parameter))
            else:
                outcome = self.search_range(point, parameter)
            merged = self.overlay_matches(kind, point, parameter, outcome.matches,
                                          outcome.generation)
            if merged is not None:
                return list(merged)

    # -- introspection ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.base) + len(self.delta)

    @property
    def applied_seq(self) -> int:
        """Highest WAL sequence number folded into the tree."""
        return self._applied_seq

    def statistics(self) -> Dict[str, object]:
        """Ingest gauges and counters merged with the write-path metrics."""
        stats: Dict[str, object] = {
            "points": len(self),
            "tree_points": len(self.base),
            "delta_points": len(self.delta),
            "wal_records": len(self.wal),
            "applied_seq": self._applied_seq,
            "last_seq": self.wal.last_seq,
            "generation": self.generation,
            "compaction_threshold": self.compaction_threshold,
        }
        stats.update(self.metrics.snapshot())
        return stats

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Close the write-ahead log (the in-memory index stays queryable)."""
        self.wal.close()

    def __enter__(self) -> "IngestingIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"IngestingIndex(tree={len(self.base)}, delta={len(self.delta)}, "
            f"generation={self.generation})"
        )
