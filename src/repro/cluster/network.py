"""The simulated network (message bus) connecting compute nodes.

Delivery is synchronous (the caller gets the message handed to the target's
handler immediately) but every delivery is charged to the
:class:`~repro.cluster.clock.SimulatedClock` with a configurable latency, so
"chattier" partition layouts show up as higher network cost in the
distributed benchmarks.  Messages between two partitions hosted on the same
compute node can be configured to cost less (local delivery).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.cluster.clock import SimulatedClock
from repro.cluster.message import Message
from repro.errors import ClusterError

__all__ = ["MessageBus"]

#: A handler invoked when a message is delivered to a partition.
MessageHandler = Callable[[Message], None]


class MessageBus:
    """Synchronous message bus with latency accounting and delivery tracing.

    Parameters
    ----------
    clock:
        The simulated clock to charge message latencies to.
    remote_latency:
        Cost charged for a message between partitions on different nodes.
    local_latency:
        Cost charged for a message between partitions on the same node.
    """

    def __init__(self, clock: SimulatedClock, *, remote_latency: float = 5.0,
                 local_latency: float = 0.5):
        if remote_latency < 0 or local_latency < 0:
            raise ClusterError("latencies must be non-negative")
        self.clock = clock
        self.remote_latency = remote_latency
        self.local_latency = local_latency
        self._handlers: Dict[str, MessageHandler] = {}
        self._locations: Dict[str, str] = {}
        self._trace: List[Message] = []
        self._tracing = False

    # -- registration ---------------------------------------------------------------

    def register(self, partition_id: str, handler: MessageHandler, node_id: str) -> None:
        """Register the handler and hosting node of a partition."""
        self._handlers[partition_id] = handler
        self._locations[partition_id] = node_id

    def unregister(self, partition_id: str) -> None:
        """Remove a partition from the bus."""
        self._handlers.pop(partition_id, None)
        self._locations.pop(partition_id, None)

    def relocate(self, partition_id: str, node_id: str) -> None:
        """Update the hosting node of a partition (used when partitions move)."""
        if partition_id not in self._handlers:
            raise ClusterError(f"partition {partition_id!r} is not registered on the bus")
        self._locations[partition_id] = node_id

    def node_of(self, partition_id: str) -> str:
        """Return the compute node currently hosting a partition."""
        try:
            return self._locations[partition_id]
        except KeyError:
            raise ClusterError(f"partition {partition_id!r} is not registered on the bus") from None

    # -- delivery ---------------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Deliver a message to its target partition, charging the network cost."""
        handler = self._handlers.get(message.target)
        if handler is None:
            raise ClusterError(
                f"cannot deliver {message!r}: target partition is not registered"
            )
        source_node = self._locations.get(message.source)
        target_node = self._locations.get(message.target)
        is_local = source_node is not None and source_node == target_node
        latency = self.local_latency if is_local else self.remote_latency
        # The latency is charged to the receiving partition: point-to-point
        # links run in parallel, so only the receiver is kept busy by the
        # transfer (see SimulatedClock.charge_message).
        self.clock.charge_message(latency, resource=message.target)
        if self._tracing:
            self._trace.append(message)
        handler(message)

    # -- tracing ------------------------------------------------------------------------

    def enable_tracing(self, enabled: bool = True) -> None:
        """Record every delivered message for later inspection (tests, debugging)."""
        self._tracing = enabled
        if not enabled:
            self._trace.clear()

    @property
    def trace(self) -> List[Message]:
        """Messages delivered while tracing was enabled."""
        return list(self._trace)

    @property
    def registered_partitions(self) -> List[str]:
        """Identifiers of every partition registered on the bus, sorted."""
        return sorted(self._handlers)

    def __repr__(self) -> str:
        return (
            f"MessageBus(partitions={len(self._handlers)}, "
            f"messages={self.clock.messages})"
        )
