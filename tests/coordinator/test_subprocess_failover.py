"""Acceptance: a real replicated subprocess fleet survives a replica kill.

The ISSUE's headline criterion, verbatim: with two replicas per partition,
killing one replica under sustained load yields **zero failed queries** —
the transport retries onto the survivor within each request — and every
answer stays bit-identical to the sequential oracle.  The coordinator's
failover counters must show the retries and the opened circuit.

Also here (it needs a real subprocess): the launcher's SIGTERM→SIGKILL
escalation for a shard that ignores graceful shutdown.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from coordinator_corpus import assert_equivalent, build_corpus_index
from repro.coordinator import launch_coordinator, shutdown_processes
from repro.coordinator.launcher import ManagedProcess, launch_replica_fleet
from repro.ingest import IngestingIndex
from repro.server.bootstrap import vocabulary_hints
from repro.service.engine import QueryEngine
from repro.service.planner import QuerySpec
from repro.workloads import ServerClient


@pytest.fixture(scope="module")
def replicated_cluster(tmp_path_factory):
    """Checkpoint a corpus, launch 2 shard replicas per partition + coordinator."""
    tmp_path = tmp_path_factory.mktemp("replicated-cluster")
    index, triples = build_corpus_index()
    actors, parameters = vocabulary_hints(triples)
    live = IngestingIndex(
        index, tmp_path / "wal.jsonl",
        vocabulary_hints={"actors": actors, "parameters": parameters},
    )
    snapshot = tmp_path / "snapshot.json"
    live.checkpoint(snapshot)
    live.close()

    data_partitions = [
        partition.partition_id for partition in index.tree.partitions
        if partition.point_count > 0
    ]
    assert len(data_partitions) >= 2

    fleet = []
    try:
        replicas = launch_replica_fleet(snapshot, data_partitions, replicas=2)
        for group in replicas.values():
            fleet.extend(group)
        coordinator = launch_coordinator(
            snapshot,
            {pid: [managed.url for managed in group]
             for pid, group in replicas.items()},
            # One failed attempt trips a replica's circuit: the acceptance
            # window ("zero failed queries after the circuit opens") starts
            # at the first post-kill scan.
            extra_args=["--failure-threshold", "1"],
        )
        fleet.append(coordinator)
        yield coordinator, replicas, index, triples
    finally:
        shutdown_processes(fleet)


def test_fleet_runs_two_replicas_per_partition(replicated_cluster):
    coordinator, replicas, _, _ = replicated_cluster
    processes = [m for group in replicas.values() for m in group]
    assert len({m.process.pid for m in processes}) == len(processes)
    for managed in processes:
        assert managed.alive
    client = ServerClient(coordinator.url)
    try:
        topology = client.request("GET", "/v1/topology")
        for partition_id in replicas:
            assert topology["replicas_per_partition"][partition_id] == 2
        health = client.health()
        assert health["status"] == "ok"
        for partition_id in replicas:
            assert health["partitions"][partition_id]["healthy"] == 2
    finally:
        client.close()


def test_replica_kill_under_load_zero_failed_queries_oracle_exact(
        replicated_cluster):
    """The acceptance criterion: kill → zero failures, exact answers."""
    coordinator, replicas, index, triples = replicated_cluster
    victim_partition = sorted(replicas)[0]
    victim = replicas[victim_partition][0]  # the preferred (primary) replica

    # Distinct (triple, k) parameterisations: every query forces a real
    # fan-out (no result-cache hit can mask a failed scatter).
    workload = [(triples[n % len(triples)], 3 + (n % 5)) for n in range(40)]
    oracle = QueryEngine(index, workers=1)
    expected = [
        oracle.execute_sequential([QuerySpec.k_nearest(triple, k)])[0].matches
        for triple, k in workload
    ]
    oracle.close()

    client = ServerClient(coordinator.url, timeout=30.0)
    failed = []
    try:
        for position, (triple, k) in enumerate(workload):
            if position == 10:
                victim.kill()  # SIGKILL mid-load: no graceful drain
            try:
                wire = client.knn(triple, k)
            except Exception as error:  # noqa: BLE001 - the metric under test
                failed.append((position, error))
                continue
            assert wire["error"] is None
            assert_equivalent(wire["matches"], expected[position], truncated=True)

        assert failed == [], f"queries failed despite a live replica: {failed}"

        metrics = client.metrics()
        failover = metrics["shards"]["failover"][victim_partition]
        assert failover["retries"] >= 1, "the kill was absorbed by retries"
        assert failover["circuit_opens"] >= 1, "the dead replica's circuit opened"
        # After the circuit opened the survivor serves alone; the partition
        # is degraded-redundancy but fully available.
        health = client.health()
        assert health["status"] == "ok"
        assert health["partitions"][victim_partition]["healthy"] == 1
        assert health["partitions"][victim_partition]["open"] == 1
    finally:
        client.close()


def test_losing_every_replica_degrades_healthz(replicated_cluster):
    """Run LAST against the fleet: it kills a whole replica group."""
    coordinator, replicas, index, triples = replicated_cluster
    victim_partition = sorted(replicas)[0]
    for managed in replicas[victim_partition]:
        managed.kill()
    client = ServerClient(coordinator.url, timeout=30.0)
    try:
        # Fresh parameterisations so the scatter really happens.
        with pytest.raises(Exception):
            client.knn(triples[0], 8)
        payload = ServerClient.knn_payload(triples[0], 8, allow_partial=True)
        partial = client.request("POST", "/v1/knn", payload)
        assert victim_partition in partial["degraded"]["missed"]
        assert partial["matches"] is not None
        health = client.health()
        assert health["status"] == "degraded"
        assert health["partitions"][victim_partition]["healthy"] == 0
    finally:
        client.close()


class TestTerminateEscalation:
    def test_sigterm_deaf_process_is_killed(self):
        process = subprocess.Popen(
            [sys.executable, "-c",
             "import signal, time\n"
             "signal.signal(signal.SIGTERM, signal.SIG_IGN)\n"
             "print('ready', flush=True)\n"
             "time.sleep(120)"],
            stdout=subprocess.PIPE, text=True,
        )
        assert process.stdout.readline().strip() == "ready"
        managed = ManagedProcess(process=process, url="http://ignored", role="test")
        returncode = managed.terminate(timeout=1.0)
        assert not managed.alive
        assert returncode == -9, "escalated to SIGKILL after the grace period"

    def test_cooperative_process_exits_gracefully(self):
        process = subprocess.Popen(
            [sys.executable, "-c",
             "import signal, sys, time\n"
             "signal.signal(signal.SIGTERM, lambda *a: sys.exit(0))\n"
             "print('ready', flush=True)\n"
             "time.sleep(120)"],
            stdout=subprocess.PIPE, text=True,
        )
        assert process.stdout.readline().strip() == "ready"
        managed = ManagedProcess(process=process, url="http://ignored", role="test")
        assert managed.terminate(timeout=10.0) == 0
