"""Shard server mode: one process serving raw scans of one partition.

In the real deployment story (see ``docs/cluster.md``) each partition of
the distributed SemTree is served by its own process.  A shard is
deliberately the dumbest tier of the stack: it holds one partition's
subtree (booted from a checkpoint snapshot by
:func:`~repro.server.bootstrap.load_shard`), and answers whole-partition
scans — :func:`~repro.core.distributed.scan_subtree_knn` /
``scan_subtree_range`` over embedded coordinates the coordinator ships.  No
semantic distance, no FastMap space, no query cache, no WAL: exactness and
caching live in the coordinator, durability in the checkpoint the shard
booted from.

:class:`ShardApp` exposes the same route-table surface as
:class:`~repro.server.app.ServerApp`, so the same
:class:`~repro.server.http.SemTreeServer` transport binds either.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro import __version__
from repro.core.distributed import scan_subtree_knn, scan_subtree_range
from repro.core.knn import KSearchState
from repro.core.point import LabeledPoint
from repro.errors import SchemaError, ServerClosingError
from repro.io.serialization import json_ready
from repro.obs import export as obs_export
from repro.obs.history import MetricsHistory
from repro.obs.logging import SlowQueryLog
from repro.obs.profile import SamplingProfiler, profile_endpoint
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import annotate_span, span
from repro.server.bootstrap import ShardBoot
from repro.server.schemas import parse_shard_scan_request, render_partition_scan
from repro.service.planner import QueryKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.semtree import SemTreeIndex

__all__ = ["ShardApp"]


class ShardApp:
    """Endpoint logic of one partition shard.

    Parameters
    ----------
    boot:
        The partition subtree and its metadata, from
        :func:`~repro.server.bootstrap.load_shard` (CLI path) or
        :meth:`from_index` (in-process tests and benchmarks).
    """

    def __init__(self, boot: ShardBoot, *, registry: MetricsRegistry | None = None,
                 slow_query_ms: Optional[float] = None,
                 profiler: SamplingProfiler | None = None,
                 history_interval: float = 5.0):
        self.boot = boot
        self.partition_id = boot.partition_id
        self.root = boot.root
        self.config = boot.config
        self._started = time.monotonic()
        self._requests: Counter = Counter()
        self._nodes_visited = 0
        self._points_examined = 0
        self._scan_seconds = 0.0
        self._cost_totals: Counter = Counter()
        self._stats_lock = threading.Lock()
        self._closed = False
        # threshold_ms=None falls back to REPRO_SLOW_QUERY_MS, matching the
        # serving tier — a slow *scan* is a slow query from the shard's view.
        self.slow_queries = SlowQueryLog(slow_query_ms)
        self.registry = registry or MetricsRegistry()
        self._bind_registry()
        self.profiler = profiler
        self.history = MetricsHistory(
            self.registry, interval=history_interval).start()

    def _bind_registry(self) -> None:
        def locked(attribute: str):
            def read() -> float:
                with self._stats_lock:
                    return float(getattr(self, attribute))
            return read

        obs_export.bind_runtime(self.registry, role="shard", version=__version__)
        obs_export.bind_http_requests(self.registry, self.request_counts)
        self.registry.gauge(
            "repro_shard_points", "Points in this shard's partition subtree.",
        ).labels().set(float(self.boot.points))
        self.registry.counter(
            "repro_shard_nodes_visited_total", "Tree nodes visited by partition scans.",
        ).set_function(locked("_nodes_visited"))
        self.registry.counter(
            "repro_shard_points_examined_total", "Points examined by partition scans.",
        ).set_function(locked("_points_examined"))
        self._scan_histogram = self.registry.histogram(
            "repro_shard_scan_seconds", "Duration of one partition scan, by kind.",
            ("kind",),
        )
        self.registry.counter(
            "repro_query_cost_total",
            "Search cost counters accumulated by partition scans.",
            ("counter",),
        ).set_callback(self._cost_counter_totals)

    def _cost_counter_totals(self) -> Dict[Tuple[str, ...], float]:
        with self._stats_lock:
            return {(name,): float(value)
                    for name, value in self._cost_totals.items()}

    def request_counts(self) -> Dict[str, int]:
        """Requests received so far, by endpoint (a stable read surface)."""
        with self._stats_lock:
            return dict(self._requests)

    @classmethod
    def from_index(cls, index: "SemTreeIndex", partition_id: str) -> "ShardApp":
        """Build a shard over one partition of an in-process built index.

        The subtree is shared, not copied: the caller must not mutate the
        index while the shard serves (exactly the contract a snapshot-booted
        shard gets for free).
        """
        tree = index.tree
        partition = tree.partition(partition_id)
        boot = ShardBoot(
            partition_id=partition_id,
            root=partition.root,
            config=tree.config,
            points=partition.point_count,
            generation=index.generation,
            wal_seq=0,
            partition_ids=tuple(p.partition_id for p in tree.partitions),
        )
        return cls(boot)

    # -- routing (consumed by repro.server.http) ----------------------------------------

    def post_routes(self) -> Dict[str, Callable[[Any], Dict[str, Any]]]:
        return {
            "/v1/shard/knn": self.handle_shard_knn,
            "/v1/shard/range": self.handle_shard_range,
        }

    def get_routes(self) -> Dict[str, Callable[[], Dict[str, Any]]]:
        return {
            "/v1/shard": self.shard_info,
            "/v1/healthz": self.health,
            "/v1/metrics": self.metrics,
        }

    def get_param_routes(self) -> Dict[str, Callable[[Dict[str, str]], Any]]:
        return {
            "/v1/debug/profile": self.debug_profile,
            "/v1/history": self.history_payload,
        }

    def debug_profile(self, params: Dict[str, str]):
        """``GET /v1/debug/profile`` — sample the shard process, render the profile."""
        with self._stats_lock:
            self._requests["debug_profile"] += 1
        return profile_endpoint(params, self.profiler)

    def history_payload(self, params: Dict[str, str]) -> Dict[str, Any]:
        """``GET /v1/history`` — the shard's metrics history ring buffer."""
        with self._stats_lock:
            self._requests["history"] += 1
        return self.history.payload()

    # -- scan endpoints -----------------------------------------------------------------

    def handle_shard_knn(self, body: Any) -> Dict[str, Any]:
        """``POST /v1/shard/knn`` — partition-local top-k for raw coordinates."""
        return self._handle_scan(QueryKind.KNN, body, "shard_knn")

    def handle_shard_range(self, body: Any) -> Dict[str, Any]:
        """``POST /v1/shard/range`` — partition-local ball scan for raw coordinates."""
        return self._handle_scan(QueryKind.RANGE, body, "shard_range")

    def _handle_scan(self, kind: QueryKind, body: Any, endpoint: str) -> Dict[str, Any]:
        self._check_open()
        coordinates, parameter = parse_shard_scan_request(body, kind)
        if len(coordinates) != self.config.dimensions:
            raise SchemaError(
                f"expected {self.config.dimensions} coordinates "
                f"(the partition's embedded space), got {len(coordinates)}",
                field="coordinates",
            )
        query = LabeledPoint.of(coordinates)
        started = time.perf_counter()
        with span("shard_scan", partition=self.partition_id, kind=kind.value):
            if kind is QueryKind.KNN:
                state = KSearchState(query=query, k=int(parameter))
                scan_subtree_knn(self.root, state, self.config.scan_kernel)
                neighbours = state.results.neighbours()
            else:
                # Deferred import keeps module import light; RangeSearchState
                # lives beside the traversal it belongs to.
                from repro.core.distributed import RangeSearchState

                state = RangeSearchState(query, parameter)
                scan_subtree_range(self.root, state, self.config.scan_kernel)
                neighbours = state.sorted_results()
            cost_counters = state.cost.to_dict()
            annotate_span(cost=cost_counters)
        elapsed = time.perf_counter() - started
        self._scan_histogram.labels(kind.value).observe(elapsed)
        with self._stats_lock:
            self._requests[endpoint] += 1
            self._nodes_visited += state.nodes_visited
            self._points_examined += state.points_examined
            self._scan_seconds += elapsed
            for counter_name, value in cost_counters.items():
                if value:
                    self._cost_totals[counter_name] += value
        self.slow_queries.observe(kind=endpoint, latency_seconds=elapsed,
                                  visited_partitions=(self.partition_id,),
                                  cost=cost_counters)
        return render_partition_scan(
            self.partition_id, neighbours,
            nodes_visited=state.nodes_visited,
            points_examined=state.points_examined,
            elapsed_seconds=elapsed,
            cost=state.cost,
        )

    # -- observability endpoints --------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /v1/healthz`` — liveness plus which partition this shard owns."""
        with self._stats_lock:
            self._requests["healthz"] += 1
        return {
            "status": "closing" if self._closed else "ok",
            "role": "shard",
            "partition_id": self.partition_id,
            "points": self.boot.points,
            "generation": self.boot.generation,
            "uptime_seconds": time.monotonic() - self._started,
        }

    def shard_info(self) -> Dict[str, Any]:
        """``GET /v1/shard`` — what is being served: partition, shape, kernel."""
        self._check_open()
        with self._stats_lock:
            self._requests["shard"] += 1
        return json_ready({
            "partition_id": self.partition_id,
            "points": self.boot.points,
            "generation": self.boot.generation,
            "wal_seq": self.boot.wal_seq,
            "snapshot_partitions": list(self.boot.partition_ids),
            "dimensions": self.config.dimensions,
            "kernel": self.config.scan_kernel,
        })

    def metrics(self) -> Dict[str, Any]:
        """``GET /v1/metrics`` — the shard metrics payload (one ``shard`` section)."""
        with self._stats_lock:
            self._requests["metrics"] += 1
            requests = dict(self._requests)
            scans = requests.get("shard_knn", 0) + requests.get("shard_range", 0)
            shard = {
                "partition_id": self.partition_id,
                "points": self.boot.points,
                "scans": scans,
                "nodes_visited": self._nodes_visited,
                "points_examined": self._points_examined,
                "scan_seconds": self._scan_seconds,
                "cost": dict(self._cost_totals),
                "requests": requests,
                "uptime_seconds": time.monotonic() - self._started,
            }
        return json_ready({"shard": shard})

    def metrics_prometheus(self) -> str:
        """``GET /v1/metrics?format=prometheus`` — text exposition v0.0.4."""
        with self._stats_lock:
            self._requests["metrics"] += 1
        return self.registry.render()

    # -- lifecycle ----------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; scan endpoints refuse further work."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ServerClosingError("the shard is shutting down")

    def close(self, *, checkpoint: bool | None = None) -> Optional[int]:
        """Shut the shard down.  A shard owns no durable state: nothing to flush.

        ``checkpoint`` is accepted (and ignored) so the HTTP transport can
        close any app type uniformly.
        """
        self._closed = True
        self.history.stop()
        if self.profiler is not None:
            self.profiler.stop()
        return None

    def __enter__(self) -> "ShardApp":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardApp(partition={self.partition_id!r}, points={self.boot.points}, "
            f"closed={self._closed})"
        )
