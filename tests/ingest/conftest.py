"""Shared fixtures for the live-ingestion test suite."""

from __future__ import annotations

import pytest

from ingest_corpus import ACTORS, BASE_TRIPLES
from repro.core import SemTreeConfig, SemTreeIndex
from repro.requirements import build_requirement_distance, build_requirement_vocabularies


@pytest.fixture(scope="session")
def distance():
    return build_requirement_distance(build_requirement_vocabularies(ACTORS))


@pytest.fixture
def make_base(distance):
    """Factory building a fresh, deterministic base index over BASE_TRIPLES."""

    def build() -> SemTreeIndex:
        index = SemTreeIndex(distance, SemTreeConfig(
            dimensions=3, bucket_size=4, max_partitions=2, partition_capacity=8,
        ))
        index.add_triples(BASE_TRIPLES)
        index.build()
        return index

    return build
