"""``repro.obs`` — stdlib-only observability: metrics, tracing, logging.

Three pillars, threaded through every serving layer:

* :mod:`repro.obs.registry` + :mod:`repro.obs.prometheus` — typed metric
  instruments (counters, gauges, fixed-bucket histograms with labels)
  rendered as Prometheus text exposition v0.0.4 at
  ``GET /v1/metrics?format=prometheus``.
* :mod:`repro.obs.tracing` — per-request trace ids propagated over the
  ``X-Trace-Id`` header, with per-stage spans recorded context-locally
  and returned in an opt-in ``debug.trace`` response section.
* :mod:`repro.obs.logging` — structured JSON logs correlated by trace id,
  plus the threshold-configurable slow-query log.
* :mod:`repro.obs.profile` — a sampling profiler over
  ``sys._current_frames()`` behind ``GET /v1/debug/profile``.
* :mod:`repro.obs.history` + :mod:`repro.obs.top` — an in-process ring
  buffer of registry deltas (``GET /v1/history``) and the live terminal
  view that polls it.

See ``docs/observability.md`` for the full contract.
"""

from repro.obs.history import MetricsHistory
from repro.obs.logging import (JsonLogFormatter, SlowQueryLog,
                               configure_logging, get_logger)
from repro.obs.profile import SamplingProfiler, profile_endpoint
from repro.obs.prometheus import (CONTENT_TYPE, parse_exposition,
                                  render_exposition, validate_exposition)
from repro.obs.registry import (DEFAULT_LATENCY_BUCKETS, MetricsRegistry)
from repro.obs.tracing import (Trace, activate, annotate_span, capture_context,
                               current_trace, new_trace_id, record_span,
                               resume_context, sanitize_trace_id, span)

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_LATENCY_BUCKETS",
    "JsonLogFormatter",
    "MetricsHistory",
    "MetricsRegistry",
    "SamplingProfiler",
    "SlowQueryLog",
    "Trace",
    "activate",
    "annotate_span",
    "capture_context",
    "configure_logging",
    "current_trace",
    "get_logger",
    "new_trace_id",
    "parse_exposition",
    "profile_endpoint",
    "record_span",
    "render_exposition",
    "resume_context",
    "sanitize_trace_id",
    "span",
    "validate_exposition",
]
