"""The scatter-gather coordinator: real sharded serving of a SemTree index.

PRs 1–4 built a single-process serving stack; the distributed tree itself
still ran on a simulated cluster.  This package makes distribution real:

* :mod:`repro.coordinator.topology` — :class:`ShardTopology`, the
  ``partition_id → shard URL`` map operators deploy against;
* :mod:`repro.coordinator.transport` — :class:`HttpShardTransport`, the
  :class:`~repro.cluster.transport.PartitionTransport` implementation that
  POSTs partition scans to ``python -m repro.server --shard`` processes
  over persistent connections;
* :mod:`repro.coordinator.sharded` — :class:`ShardedIndex`, the servable
  index whose searches scatter across shards and gather through the
  paper's result-set merge (bit-identical to the sequential search);
* :mod:`repro.coordinator.app` — :class:`CoordinatorApp`, the HTTP
  endpoint logic (same wire API as a full server, read-only);
* :mod:`repro.coordinator.launcher` — subprocess orchestration for
  examples, benchmarks and tests;
* :mod:`repro.coordinator.__main__` — the ``python -m repro.coordinator``
  CLI.

See ``docs/cluster.md`` for the deployment topology, the exactness
guarantee and the failure semantics.
"""

from repro.coordinator.app import CoordinatorApp
from repro.coordinator.launcher import (ManagedProcess, launch_coordinator,
                                        launch_replica_fleet, launch_shard,
                                        launch_shards, shutdown_processes)
from repro.coordinator.sharded import ShardedIndex
from repro.coordinator.topology import ShardTopology
from repro.coordinator.transport import HttpShardTransport

__all__ = [
    "CoordinatorApp",
    "ShardedIndex",
    "ShardTopology",
    "HttpShardTransport",
    "ManagedProcess",
    "launch_shard",
    "launch_shards",
    "launch_replica_fleet",
    "launch_coordinator",
    "shutdown_processes",
]
