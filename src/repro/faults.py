"""Deterministic fault injection for chaos testing the serving stack.

A :class:`FaultPlan` is a list of :class:`FaultSpec` rules — *where* a
fault fires (an operation name plus a target substring), *what* it does
(added latency, a simulated connection error, a 5xx response, a slow-drip
response) and *how often* (an activation probability driven by a seeded
RNG, an optional skip count and an optional fire budget).  The plan is the
single source of chaos in the process: the shard transport
(:class:`~repro.coordinator.transport.HttpShardTransport`) consults it
before every scan attempt and the HTTP handler
(:mod:`repro.server.http`) consults it before every request, so the same
plan description can break either side of the wire.

Determinism is the point: two runs with the same plan JSON and the same
call sequence inject exactly the same faults, which is what lets the
chaos harness (``tools/chaos_smoke.py``) assert hard outcomes ("zero
failed queries after the circuit opens") instead of flaky probabilities.

Plans are wired in three ways:

* programmatically — ``FaultPlan([FaultSpec(...)])``;
* from JSON — :meth:`FaultPlan.from_json` (the CLI ``--faults`` flag);
* from the environment — :meth:`FaultPlan.from_env` reads ``REPRO_FAULTS``,
  which is how the chaos harness poisons *subprocess* servers it spawns.

The JSON form is a list of spec objects (or ``{"seed": ..., "faults":
[...]}``)::

    [{"operation": "handle", "target": "/v1/knn", "kind": "latency",
      "latency": 0.05, "probability": 0.5}]
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan", "InjectedFault"]

#: Everything a spec's ``kind`` may name.
#:
#: * ``latency`` — sleep before the operation proceeds normally.
#: * ``error`` — the operation fails as if the connection was reset.
#: * ``http_5xx`` — an HTTP surface answers with ``status`` instead.
#: * ``slow_drip`` — the response body is written in small chunks with the
#:   configured latency spread across them (a pathologically slow peer).
FAULT_KINDS = ("latency", "error", "http_5xx", "slow_drip")

#: Environment variable :meth:`FaultPlan.from_env` reads.
ENV_VAR = "REPRO_FAULTS"


class InjectedFault(ReproError):
    """Raised where an ``error``-kind fault fires in-process.

    Carries enough to look like a real transport failure to the layer
    above (the shard transport maps it onto the same retry/breaker path a
    genuine connection reset takes).
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: where it fires, what it does, how often.

    Attributes
    ----------
    operation:
        Which instrumented call site the rule applies to: ``"scan"`` (the
        shard transport, once per scan attempt), ``"handle"`` (the HTTP
        handler, once per request) or ``"*"`` for both.
    target:
        Substring matched against the call site's target label — the
        ``partition@url`` of a scan, the route of a request.  ``"*"`` (or
        ``""``) matches everything.
    kind:
        One of :data:`FAULT_KINDS`.
    latency:
        Seconds of injected delay (``latency`` and ``slow_drip`` kinds).
    status:
        Response status for ``http_5xx`` faults.
    probability:
        Activation probability per matching call, driven by the plan's
        seeded RNG (1.0 = every matching call).
    skip_first:
        Let this many matching calls through unharmed before arming.
    max_fires:
        Stop firing after this many injections (``None`` = unlimited).
    """

    operation: str = "*"
    target: str = "*"
    kind: str = "latency"
    latency: float = 0.0
    status: int = 503
    probability: float = 1.0
    skip_first: int = 0
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.latency < 0:
            raise ReproError("fault latency must be non-negative")
        if not 0.0 <= self.probability <= 1.0:
            raise ReproError("fault probability must be in [0, 1]")
        if self.skip_first < 0:
            raise ReproError("skip_first must be non-negative")
        if self.max_fires is not None and self.max_fires < 0:
            raise ReproError("max_fires must be non-negative")
        if not 500 <= self.status <= 599:
            raise ReproError("an http_5xx fault needs a 5xx status")

    def matches(self, operation: str, target: str) -> bool:
        if self.operation not in ("*", operation):
            return False
        return self.target in ("*", "") or self.target in target

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultSpec":
        if not isinstance(payload, dict):
            raise ReproError(
                f"a fault spec must be a JSON object, got {type(payload).__name__}"
            )
        allowed = {"operation", "target", "kind", "latency", "status",
                   "probability", "skip_first", "max_fires"}
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise ReproError(
                f"unknown fault spec field(s) {', '.join(map(repr, unknown))}"
            )
        return cls(**payload)

    def to_dict(self) -> Dict:
        payload: Dict = {
            "operation": self.operation, "target": self.target, "kind": self.kind,
        }
        if self.latency:
            payload["latency"] = self.latency
        if self.kind == "http_5xx":
            payload["status"] = self.status
        if self.probability != 1.0:
            payload["probability"] = self.probability
        if self.skip_first:
            payload["skip_first"] = self.skip_first
        if self.max_fires is not None:
            payload["max_fires"] = self.max_fires
        return payload


class _SpecState:
    """Mutable per-spec bookkeeping (seen/fired counts) behind the plan lock."""

    __slots__ = ("spec", "seen", "fired")

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.seen = 0
        self.fired = 0


class FaultPlan:
    """A deterministic, thread-safe schedule of faults.

    Parameters
    ----------
    specs:
        The fault rules, evaluated in order; the first rule that fires
        wins for a given call (rules are not stacked).
    seed:
        Seeds the RNG behind every ``probability < 1`` decision, so a
        plan replays identically for an identical call sequence.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), *, seed: int = 0):
        self._states = [_SpecState(spec) for spec in specs]
        self._rng = Random(seed)
        self._seed = seed
        self._lock = threading.Lock()

    def __bool__(self) -> bool:
        return bool(self._states)

    def __len__(self) -> int:
        return len(self._states)

    # -- the decision -------------------------------------------------------------------

    def decide(self, operation: str, target: str = "") -> Optional[FaultSpec]:
        """The fault (if any) to inject for one call at ``operation``/``target``.

        Evaluates specs in declaration order under one lock: counters and
        the RNG advance deterministically however many threads call in,
        for a fixed arrival order.
        """
        with self._lock:
            for state in self._states:
                spec = state.spec
                if not spec.matches(operation, target):
                    continue
                state.seen += 1
                if state.seen <= spec.skip_first:
                    continue
                if spec.max_fires is not None and state.fired >= spec.max_fires:
                    continue
                if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                    continue
                state.fired += 1
                return spec
        return None

    def stats(self) -> List[Dict]:
        """Per-spec injection counters (matching calls seen, faults fired)."""
        with self._lock:
            return [
                {"spec": state.spec.to_dict(), "seen": state.seen,
                 "fired": state.fired}
                for state in self._states
            ]

    def fired(self) -> int:
        """Total faults injected so far, across every spec."""
        with self._lock:
            return sum(state.fired for state in self._states)

    # -- construction -------------------------------------------------------------------

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON: a spec list, or ``{"seed", "faults"}``."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReproError(f"fault plan is not valid JSON: {error}") from error
        seed = 0
        if isinstance(payload, dict):
            unknown = sorted(set(payload) - {"seed", "faults"})
            if unknown:
                raise ReproError(
                    f"unknown fault plan field(s) {', '.join(map(repr, unknown))}"
                )
            seed = payload.get("seed", 0)
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise ReproError("fault plan seed must be an integer")
            payload = payload.get("faults", [])
        if not isinstance(payload, list):
            raise ReproError("a fault plan must be a JSON array of fault specs")
        return cls([FaultSpec.from_dict(entry) for entry in payload], seed=seed)

    @classmethod
    def from_source(cls, raw: Optional[str]) -> Optional["FaultPlan"]:
        """Parse a plan from JSON text *or* a path to a JSON file (the
        CLI ``--faults`` argument form); ``None``/blank yields no plan."""
        raw = (raw or "").strip()
        if not raw:
            return None
        if not raw.startswith(("[", "{")) and os.path.exists(raw):
            raw = open(raw, encoding="utf-8").read()
        return cls.from_json(raw)

    @classmethod
    def from_env(cls, variable: str = ENV_VAR) -> Optional["FaultPlan"]:
        """The plan in ``$REPRO_FAULTS`` (JSON text, or a path to a JSON
        file), or ``None`` when the variable is unset/empty.

        This is how chaos runs poison subprocess servers: export the plan,
        spawn the fleet, every child picks it up at boot.
        """
        return cls.from_source(os.environ.get(variable))

    def to_dict(self) -> Dict:
        """The JSON-ready plan description (seed + specs, not counters)."""
        return {
            "seed": self._seed,
            "faults": [state.spec.to_dict() for state in self._states],
        }

    def __repr__(self) -> str:
        return f"FaultPlan(specs={len(self._states)}, fired={self.fired()})"
