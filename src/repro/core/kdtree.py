"""The sequential bucket KD-tree.

This is the single-partition building block of SemTree and, on its own, the
baseline used by the paper's *sequential* experiments (Figures 4 and 6).  It
follows the paper's structural choices:

* data lives only in leaf buckets of size ``Bs``;
* routing nodes carry the split index ``Sr`` and split value ``Sv``; the
  point descends left when ``P[Sr] <= Sv``;
* a saturated leaf is converted into a routing node whose two fresh children
  receive its points;
* k-nearest search descends to the candidate leaf and backtracks, visiting
  the sibling subtree only when the splitting plane is closer than the
  current worst neighbour or the result set is not yet full (the paper's
  disjunction);
* range search descends both children when ``|P[SI] - Sv| < D`` and one
  child otherwise, then merges results on the way back.

All traversals are iterative (explicit stacks): the paper's "totally
unbalanced (chain)" configuration produces trees whose depth equals the
number of points, which would overflow Python's recursion limit.

The module also offers two bulk builders used by the benchmarks:
:meth:`KDTree.build_balanced` (recursive median construction, depth
``O(log N)``) and :meth:`KDTree.build_chain` (the worst-case chain).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import kernels
from repro.core.config import SemTreeConfig, SplitStrategy
from repro.core.cost import SearchCost
from repro.core.kernels import DEFAULT_SCAN_KERNEL, validate_scan_kernel
from repro.core.knn import KSearchState, Neighbour
from repro.core.node import Node, RemoteChild
from repro.core.point import LabeledPoint
from repro.core.splitting import choose_split, partition_bucket
from repro.errors import IndexError_, QueryError

__all__ = ["KDTree"]


class KDTree:
    """A sequential bucket KD-tree over :class:`LabeledPoint`.

    Parameters
    ----------
    dimensions:
        Dimensionality of the indexed points.
    bucket_size:
        Leaf capacity ``Bs``.
    split_strategy:
        How saturated leaves choose their split (see
        :class:`~repro.core.config.SplitStrategy`).
    scan_kernel:
        Leaf-scan implementation: ``"numpy"`` (vectorized, default) or
        ``"scalar"`` (per-point oracle).  See :mod:`repro.core.kernels`.
    """

    def __init__(self, dimensions: int, *, bucket_size: int = 16,
                 split_strategy: SplitStrategy = SplitStrategy.MEDIAN,
                 scan_kernel: str = DEFAULT_SCAN_KERNEL):
        if dimensions < 1:
            raise IndexError_("dimensions must be >= 1")
        if bucket_size < 1:
            raise IndexError_("bucket_size must be >= 1")
        self.dimensions = dimensions
        self.bucket_size = bucket_size
        self.split_strategy = split_strategy
        self.scan_kernel = validate_scan_kernel(scan_kernel)
        self.root: Node = Node()
        self._size = 0

    # -- construction -------------------------------------------------------------------

    @classmethod
    def from_config(cls, config: SemTreeConfig) -> "KDTree":
        """Build an empty tree from a :class:`SemTreeConfig`."""
        return cls(config.dimensions, bucket_size=config.bucket_size,
                   split_strategy=config.split_strategy,
                   scan_kernel=config.scan_kernel)

    @classmethod
    def build_balanced(cls, points: Sequence[LabeledPoint], *, bucket_size: int = 16,
                       scan_kernel: str = DEFAULT_SCAN_KERNEL) -> "KDTree":
        """Bulk-load a balanced tree by recursive median splitting.

        This reproduces the paper's observation that "Kd-trees are more
        efficient in bulk-loading situations": the resulting tree has depth
        ``O(log(N / Bs))`` regardless of the input order.
        """
        if not points:
            raise IndexError_("cannot bulk-load an empty point set")
        dimensions = points[0].dimensions
        tree = cls(dimensions, bucket_size=bucket_size, split_strategy=SplitStrategy.MEDIAN,
                   scan_kernel=scan_kernel)
        tree.root = tree._build_balanced_node(list(points), depth=0)
        tree._size = len(points)
        return tree

    def _build_balanced_node(self, points: List[LabeledPoint], depth: int) -> Node:
        if len(points) <= self.bucket_size:
            return Node(bucket=list(points))
        dimension = depth % self.dimensions
        points.sort(key=lambda point: point[dimension])
        median_index = len(points) // 2
        split_value = points[median_index - 1][dimension]
        left_points, right_points = partition_bucket(points, dimension, split_value)
        if not left_points or not right_points:
            # Degenerate coordinates on this dimension: fall back to the
            # generic splitter, or keep an oversized leaf if even that fails.
            try:
                decision = choose_split(points, depth, self.dimensions, self.split_strategy)
            except IndexError_:
                return Node(bucket=list(points))
            dimension, split_value = decision.split_index, decision.split_value
            left_points, right_points = list(decision.left_points), list(decision.right_points)
        node = Node(split_index=dimension, split_value=split_value)
        node.left = self._build_balanced_node(left_points, depth + 1)
        node.right = self._build_balanced_node(right_points, depth + 1)
        return node

    @classmethod
    def build_chain(cls, points: Sequence[LabeledPoint], *, bucket_size: int = 1,
                    scan_kernel: str = DEFAULT_SCAN_KERNEL) -> "KDTree":
        """Build the paper's "totally unbalanced (chain)" tree.

        Points are sorted on their coordinates and strung on a
        right-descending chain: every routing node keeps a single-point leaf
        on its left and the rest of the data below its right child.  Lookup
        cost degenerates to ``O(N)``, which is exactly the worst case the
        paper contrasts with the balanced tree.
        """
        if not points:
            raise IndexError_("cannot build a chain over an empty point set")
        dimensions = points[0].dimensions
        tree = cls(dimensions, bucket_size=max(bucket_size, 1),
                   split_strategy=SplitStrategy.FIRST_POINT, scan_kernel=scan_kernel)
        ordered = sorted(points, key=lambda point: point.coordinates)
        # Build the chain bottom-up (iteratively) so arbitrarily long chains
        # never hit the recursion limit.
        tail_size = max(tree.bucket_size, 1)
        current: Node = Node(bucket=list(ordered[-tail_size:]))
        for point in reversed(ordered[:-tail_size] if len(ordered) > tail_size else []):
            routing = Node(split_index=0, split_value=point[0])
            routing.left = Node(bucket=[point])
            routing.right = current
            current = routing
        tree.root = current
        tree._size = len(points)
        return tree

    # -- insertion -----------------------------------------------------------------------

    def insert(self, point: LabeledPoint) -> None:
        """Insert one point, splitting the target leaf if its bucket saturates."""
        if point.dimensions != self.dimensions:
            raise IndexError_(
                f"point has {point.dimensions} dimensions, the tree expects {self.dimensions}"
            )
        node, depth = self._descend_to_leaf(point)
        node.add_to_bucket(point)
        self._size += 1
        if len(node.bucket) > self.bucket_size:
            self._split_leaf(node, depth)

    def insert_all(self, points: Iterable[LabeledPoint]) -> None:
        """Insert many points one by one (the paper's dynamic-insertion regime)."""
        for point in points:
            self.insert(point)

    def _descend_to_leaf(self, point: LabeledPoint) -> Tuple[Node, int]:
        node = self.root
        depth = 0
        while node.is_routing:
            node = self._local(node.child_for(point))
            depth += 1
        return node, depth

    def _split_leaf(self, leaf: Node, depth: int) -> None:
        try:
            decision = choose_split(leaf.bucket, depth, self.dimensions, self.split_strategy)
        except IndexError_:
            # All points identical: allow the oversized bucket (splitting is impossible).
            return
        left = Node(bucket=list(decision.left_points))
        right = Node(bucket=list(decision.right_points))
        leaf.convert_to_routing(decision.split_index, decision.split_value, left, right)

    # -- k-nearest search --------------------------------------------------------------------

    def k_nearest(self, query: LabeledPoint, k: int) -> List[Neighbour]:
        """Return the ``k`` nearest stored points to ``query``, closest first."""
        return self.k_nearest_state(query, k).results.neighbours()

    def k_nearest_state(self, query: LabeledPoint, k: int) -> KSearchState:
        """Run the k-nearest search and return the full search state
        (result set plus visit counters)."""
        if query.dimensions != self.dimensions:
            raise QueryError(
                f"query has {query.dimensions} dimensions, the tree expects {self.dimensions}"
            )
        state = KSearchState(query=query, k=k)
        # Explicit stack of (node, pending_far_child); a ``None`` second item
        # means the entry still has to be expanded (forward phase).  The loop
        # body inlines ``child_for`` / ``other_child`` / ``must_visit_other_side``:
        # deep searches traverse thousands of routing nodes and the method
        # dispatch was a measurable share of query latency.
        query_coords = query.coordinates
        results = state.results
        scan_kernel = self.scan_kernel
        stack: List[Tuple[Node, Optional[Node]]] = [(self.root, None)]
        while stack:
            node, pending_far = stack.pop()
            split_index = node.split_index
            if pending_far is not None:
                # Backward visit of ``node``: decide whether to explore the
                # not-yet-analysed subtree (the paper's disjunction).
                if (not results.is_full
                        or abs(query_coords[split_index] - node.split_value)
                        < results.current_radius):
                    stack.append((pending_far, None))
                continue
            state.nodes_visited += 1
            if split_index is None:  # leaf
                kernels.knn_scan_node(state, node, scan_kernel)
                continue
            if query_coords[split_index] <= node.split_value:
                near_child, far_child = node.left, node.right
            else:
                near_child, far_child = node.right, node.left
            if not isinstance(near_child, Node) or not isinstance(far_child, Node):
                raise IndexError_("a sequential KDTree cannot contain remote children")
            stack.append((node, far_child))   # backward visit, handled after the near subtree
            stack.append((near_child, None))  # forward visit of the near subtree first
        return state

    # -- range search ---------------------------------------------------------------------------

    def range_query(self, query: LabeledPoint, radius: float) -> List[Neighbour]:
        """Return every stored point within ``radius`` of ``query``, closest first."""
        return self.range_query_state(query, radius)[0]

    def range_query_state(self, query: LabeledPoint, radius: float,
                          cost: Optional[SearchCost] = None,
                          ) -> Tuple[List[Neighbour], int]:
        """Run the range search; return ``(results, nodes_visited)``.

        ``cost``, when given, accumulates the leaf scans' work counters
        (:class:`~repro.core.cost.SearchCost`) without changing the return
        shape existing callers rely on.
        """
        if query.dimensions != self.dimensions:
            raise QueryError(
                f"query has {query.dimensions} dimensions, the tree expects {self.dimensions}"
            )
        if radius < 0:
            raise QueryError("the range distance D must be non-negative")
        results: List[Neighbour] = []
        visited = 0
        query_coords = query.coordinates
        query_array = np.asarray(query_coords, dtype=np.float64)
        scan_kernel = self.scan_kernel
        stack: List[Node] = [self.root]
        while stack:
            node = stack.pop()
            visited += 1
            split_index = node.split_index
            if split_index is None:  # leaf
                found, _ = kernels.range_scan_node(query, radius, node, scan_kernel,
                                                   query_array=query_array, cost=cost)
                results.extend(found)
                continue
            offset = query_coords[split_index] - node.split_value
            if abs(offset) < radius:
                # The query ball straddles the splitting plane: navigate both children.
                stack.append(self._local(node.left))
                stack.append(self._local(node.right))
            else:
                # Otherwise navigate as in the insertion algorithm
                # (``P[Sr] <= Sv`` descends left).
                stack.append(self._local(node.left if offset <= 0 else node.right))
        results.sort(key=lambda neighbour: neighbour.distance)
        return results, visited

    @staticmethod
    def _local(child) -> Node:
        if child is None or isinstance(child, RemoteChild):
            raise IndexError_("a sequential KDTree cannot contain remote children")
        return child

    # -- maintenance --------------------------------------------------------------------------------
    #
    # The paper notes that "once built, modifying or rebalancing a Kd-tree is
    # a non-trivial task" and leaves it out of scope.  The reproduction adds
    # the two obvious maintenance operations so the index can be used beyond
    # the bulk-load-then-query regime: point deletion (bucket removal, no
    # structural merging) and an explicit rebalance (rebuild by median
    # splitting over the surviving points).

    def delete(self, point: LabeledPoint) -> bool:
        """Remove one stored point; return ``True`` when it was present.

        Only the leaf bucket is touched: routing nodes are never merged, so
        repeated deletions can leave empty leaves behind.  Call
        :meth:`rebalance` to compact the structure when a large fraction of
        the data has been removed.
        """
        if point.dimensions != self.dimensions:
            raise IndexError_(
                f"point has {point.dimensions} dimensions, the tree expects {self.dimensions}"
            )
        leaf, _ = self._descend_to_leaf(point)
        if not leaf.remove_from_bucket(point):
            return False
        self._size -= 1
        return True

    def delete_all(self, points: Iterable[LabeledPoint]) -> int:
        """Delete many points; return how many were actually removed."""
        return sum(1 for point in points if self.delete(point))

    def rebalance(self) -> None:
        """Rebuild the tree in place as a balanced tree over the current points.

        This is the answer to the paper's "rebalancing is non-trivial"
        remark: an explicit, bulk re-load (O(N log N)) that restores the
        logarithmic depth after skewed insertions or many deletions.
        """
        points = self.points()
        if not points:
            self.root = Node()
            self._size = 0
            return
        rebuilt = KDTree.build_balanced(points, bucket_size=self.bucket_size)
        self.root = rebuilt.root
        self._size = len(points)

    # -- introspection -----------------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def points(self) -> List[LabeledPoint]:
        """Every stored point (leaf order)."""
        collected: List[LabeledPoint] = []
        for node in self._iter_nodes():
            if node.is_leaf:
                collected.extend(node.bucket)
        return collected

    def _iter_nodes(self) -> Iterable[Node]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if node.is_routing:
                stack.append(self._local(node.left))
                stack.append(self._local(node.right))

    def depth(self) -> int:
        """Maximum depth of the tree (a single leaf has depth 0)."""
        maximum = 0
        stack: List[Tuple[Node, int]] = [(self.root, 0)]
        while stack:
            node, level = stack.pop()
            maximum = max(maximum, level)
            if node.is_routing:
                stack.append((self._local(node.left), level + 1))
                stack.append((self._local(node.right), level + 1))
        return maximum

    def node_count(self) -> int:
        """Total number of nodes (routing + leaves)."""
        return sum(1 for _ in self._iter_nodes())

    def leaf_count(self) -> int:
        """Number of leaf nodes."""
        return sum(1 for node in self._iter_nodes() if node.is_leaf)

    def routing_count(self) -> int:
        """Number of routing nodes."""
        return sum(1 for node in self._iter_nodes() if node.is_routing)

    def __repr__(self) -> str:
        return (
            f"KDTree(points={self._size}, dimensions={self.dimensions}, "
            f"bucket_size={self.bucket_size}, depth={self.depth()})"
        )
