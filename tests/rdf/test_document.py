"""Tests for the document model."""

import pytest

from repro.errors import TripleError
from repro.rdf import Concept, Document, DocumentCollection, Triple, TriplePattern


@pytest.fixture
def document() -> Document:
    return Document("doc-1", [
        Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up"),
        Triple.of("OBSW001", "Fun:send_msg", "MsgType:heartbeat"),
    ], text="two requirements")


class TestDocument:
    def test_requires_identifier(self):
        with pytest.raises(TripleError):
            Document("")

    def test_len_and_iteration_preserve_order(self, document):
        assert len(document) == 2
        assert list(document)[0].predicate == Concept("accept_cmd", "Fun")

    def test_add_triple_appends(self, document):
        document.add_triple(Triple.of("OBSW001", "Fun:block_cmd", "CmdType:start-up"))
        assert len(document) == 3
        assert list(document)[-1].predicate == Concept("block_cmd", "Fun")

    def test_match_pattern(self, document):
        results = document.match(TriplePattern(predicate=Concept("send_msg", "Fun")))
        assert len(results) == 1


class TestDocumentCollection:
    def test_add_and_get(self, document):
        collection = DocumentCollection([document])
        assert collection.get("doc-1") is document
        assert "doc-1" in collection
        assert len(collection) == 1

    def test_get_unknown_raises_key_error(self):
        with pytest.raises(KeyError):
            DocumentCollection().get("missing")

    def test_re_adding_same_id_replaces(self, document):
        collection = DocumentCollection([document])
        replacement = Document("doc-1", [Triple.of("a", "b", "c")])
        collection.add(replacement)
        assert len(collection) == 1
        assert len(collection.get("doc-1")) == 1

    def test_all_triples_carries_document_ids(self, document):
        other = Document("doc-2", [Triple.of("x", "y", "z")])
        collection = DocumentCollection([document, other])
        pairs = collection.all_triples()
        assert ("doc-1", document.triples[0]) in pairs
        assert ("doc-2", other.triples[0]) in pairs
        assert len(pairs) == 3

    def test_total_triples(self, document):
        collection = DocumentCollection([document, Document("doc-2", [Triple.of("x", "y", "z")])])
        assert collection.total_triples() == 3
