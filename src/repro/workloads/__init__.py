"""Synthetic workloads: point distributions and query batches for the
efficiency experiments (Figures 3–7)."""

from repro.workloads.distributions import (
    clustered_points,
    grid_points,
    skewed_points,
    sorted_points,
    uniform_points,
)
from repro.workloads.queries import (QueryWorkload, mixed_query_specs,
                                     perturbed_queries, uniform_queries)

__all__ = [
    "uniform_points",
    "clustered_points",
    "skewed_points",
    "sorted_points",
    "grid_points",
    "QueryWorkload",
    "uniform_queries",
    "perturbed_queries",
    "mixed_query_specs",
]
