"""Inconsistency detection over requirements, via SemTree k-NN retrieval.

Section II of the paper defines when two triples are inconsistent:

    "two triplets t_i and t_j are inconsistent if: (i) they have the same
    subject, (ii) they have the same object, (iii) the two predicates are
    linked by an antinomy relationship in a given vocabulary"

and describes the retrieval protocol used to *find* inconsistencies:

    build a *target triple* from a stored triple by replacing its predicate
    with an antinomic term, then run a k-nearest query with the target
    triple; the result set contains "all the triples semantically close to
    the target one", which are the candidate contradictions.

This module provides:

* :func:`are_inconsistent` — the formal definition, used by the ground-truth
  oracle and by tests;
* :func:`make_target_triple` — target-triple construction from the
  requirements vocabulary;
* :class:`InconsistencyDetector` — the end-to-end detector over a
  :class:`~repro.core.semtree.SemTreeIndex`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.core.semtree import SemanticMatch, SemTreeIndex
from repro.errors import VocabularyError
from repro.rdf.terms import Concept
from repro.rdf.triple import Triple
from repro.semantics.vocabulary import Vocabulary

__all__ = [
    "are_inconsistent",
    "make_target_triple",
    "InconsistencyReport",
    "InconsistencyDetector",
]


def are_inconsistent(triple_a: Triple, triple_b: Triple, vocabulary: Vocabulary) -> bool:
    """The paper's inconsistency definition (Section II).

    ``True`` when the two triples share subject and object and their
    predicates are antinomic in ``vocabulary``.  Predicates that are not
    concepts (or are unknown to the vocabulary) are never antinomic.
    """
    if triple_a.subject != triple_b.subject:
        return False
    if triple_a.object != triple_b.object:
        return False
    predicate_a, predicate_b = triple_a.predicate, triple_b.predicate
    if not isinstance(predicate_a, Concept) or not isinstance(predicate_b, Concept):
        return False
    if not vocabulary.has_concept(predicate_a) or not vocabulary.has_concept(predicate_b):
        return False
    return vocabulary.are_antonyms(predicate_a, predicate_b)


def make_target_triple(triple: Triple, vocabulary: Vocabulary, *,
                       antonym_index: int = 0) -> Triple:
    """Build the target (query) triple of the paper's protocol.

    "A target triple was obtained considering subject and object of the
    selected triple and as predicate an antinomic term with respect to the
    predicate of the selected triple."

    Raises
    ------
    VocabularyError
        If the predicate has no antonym in the vocabulary.
    """
    predicate = triple.predicate
    if not isinstance(predicate, Concept):
        raise VocabularyError(f"the predicate of {triple} is not a concept")
    antonyms = sorted(vocabulary.antonyms_of(predicate))
    if not antonyms:
        raise VocabularyError(f"predicate {predicate} has no antonym in {vocabulary.name!r}")
    antonym = antonyms[antonym_index % len(antonyms)]
    return triple.replace(predicate=Concept(antonym, predicate.prefix))


@dataclass
class InconsistencyReport:
    """The outcome of probing one requirement triple for inconsistencies.

    Attributes
    ----------
    source_triple:
        The stored triple that was probed.
    target_triple:
        The antinomic query triple built from it.
    retrieved:
        The k-NN result set (semantic matches, closest first).
    confirmed:
        The subset of retrieved triples that satisfy the formal
        inconsistency definition against the *source* triple.
    """

    source_triple: Triple
    target_triple: Triple
    retrieved: List[SemanticMatch] = field(default_factory=list)
    confirmed: List[SemanticMatch] = field(default_factory=list)

    @property
    def has_inconsistency(self) -> bool:
        """True when at least one retrieved triple is a confirmed inconsistency."""
        return bool(self.confirmed)

    def retrieved_triples(self) -> List[Triple]:
        """The retrieved triples (without scores), closest first."""
        return [match.triple for match in self.retrieved]


class InconsistencyDetector:
    """Finds candidate inconsistencies with SemTree k-NN queries.

    Parameters
    ----------
    index:
        A built :class:`SemTreeIndex` over the requirements triples.
    vocabulary:
        The requirements function vocabulary (antinomy relation).
    k:
        Number of neighbours retrieved per probe (the paper sweeps this
        value in Fig. 8).
    """

    def __init__(self, index: SemTreeIndex, vocabulary: Vocabulary, *, k: int = 5):
        self.index = index
        self.vocabulary = vocabulary
        self.k = k

    def probe(self, triple: Triple, *, k: int | None = None) -> InconsistencyReport:
        """Probe one stored triple: build its target triple, query, confirm."""
        target = make_target_triple(triple, self.vocabulary)
        return self.probe_with_target(triple, target, k=k)

    def probe_with_target(self, source: Triple, target: Triple, *,
                          k: int | None = None) -> InconsistencyReport:
        """Probe with an explicit target triple (used by the Fig. 8 protocol)."""
        retrieved = self.index.k_nearest(target, k or self.k)
        confirmed = [
            match for match in retrieved
            if are_inconsistent(source, match.triple, self.vocabulary)
        ]
        return InconsistencyReport(
            source_triple=source,
            target_triple=target,
            retrieved=retrieved,
            confirmed=confirmed,
        )

    def scan(self, triples: Sequence[Triple], *, k: int | None = None) -> List[InconsistencyReport]:
        """Probe a batch of triples; triples without antinomic predicates are skipped."""
        reports: List[InconsistencyReport] = []
        for triple in triples:
            try:
                reports.append(self.probe(triple, k=k))
            except VocabularyError:
                continue
        return reports

    def conflicting_pairs(self, triples: Sequence[Triple], *,
                          k: int | None = None) -> List[Tuple[Triple, Triple]]:
        """Convenience: the distinct (source, conflicting) pairs found by :meth:`scan`."""
        pairs = []
        seen = set()
        for report in self.scan(triples, k=k):
            for match in report.confirmed:
                key = (report.source_triple, match.triple)
                if key not in seen:
                    seen.add(key)
                    pairs.append(key)
        return pairs
