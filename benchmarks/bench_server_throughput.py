"""Server throughput — HTTP round-trip QPS and latency, per transport.

The process-level front end puts a socket, HTTP framing and JSON codec in
front of the `QueryEngine`; this benchmark measures what that costs per
transport and how it scales with concurrent clients.  It boots both HTTP
front ends — the thread-per-connection ``SemTreeServer`` and the
:mod:`selectors` event-loop ``AsyncSemTreeServer`` (with its wire-byte
cache on, as the single-node CLI deploys it) — on ephemeral loopback
ports, replays the same mixed k-NN/range wire workload through the
:func:`~repro.workloads.http_client.generate_load` driver and reports,
per client-thread count (1 / 4 / 8) and per transport:

* aggregate QPS over the whole run,
* client-observed latency percentiles (p50/p90/p99, ms),
* the engine result-cache and (async) wire-cache hit rates.

Methodology: each server gets one untimed warmup pass, then the sweep
measures *steady state* — caches stay warm between points, exactly as a
long-running deployment serves.  The driver pre-encodes every payload and
never decodes success bodies, so client CPU stays out of the measurement.

Shape expectations encoded below: answers served over HTTP are identical
to direct in-process engine calls on both transports, and at 8 client
threads the async transport must sustain at least twice the threaded QPS
with a p99 no worse.  Absolute numbers depend on the host; the JSON twin
(``BENCH_server_throughput.json``) records the trajectory in git.

Quick mode (``SERVER_BENCH_QUICK=1``, used by the CI perf-smoke job)
shrinks the workload and the thread sweep and drops the 2x floor (smoke
runners are too noisy to gate on a ratio) so the file doubles as a smoke
test that both server stacks work under concurrent HTTP load.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

import pytest

from repro.core import SemTreeConfig, SemTreeIndex
from repro.evaluation import Experiment
from repro.ingest import IngestingIndex
from repro.requirements import (GeneratorConfig, RequirementsGenerator,
                                build_requirement_distance,
                                build_requirement_vocabularies)
from repro.server import ServerApp, create_server
from repro.service.planner import QuerySpec
from repro.workloads import generate_load, query_payloads

from .conftest import write_report

QUICK = bool(os.environ.get("SERVER_BENCH_QUICK"))

THREAD_COUNTS: Tuple[int, ...] = (1, 2) if QUICK else (1, 4, 8)
REQUEST_COUNT = 64 if QUICK else 512
ENGINE_WORKERS = 4

#: How the two series are booted; the async transport runs with its
#: loop-side wire cache, matching the single-node CLI's default.
TRANSPORT_KWARGS = {
    "threaded": {},
    "async": {"wire_cache": True},
}


def _build_corpus_index() -> Tuple[SemTreeIndex, List]:
    config = GeneratorConfig(
        documents=4 if QUICK else 8, requirements_per_document=6,
        sentences_per_requirement=3, actors=16, inconsistency_rate=0.2,
        restatement_rate=0.2, seed=29,
    )
    corpus = RequirementsGenerator(config).generate()
    vocabularies = build_requirement_vocabularies(
        corpus.actor_names, corpus.parameter_values
    )
    distance = build_requirement_distance(vocabularies)
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=4, bucket_size=8, max_partitions=4, partition_capacity=48,
    ))
    for document in corpus.documents:
        index.add_document(document.to_rdf_document())
    index.build()
    triples = list(dict.fromkeys(corpus.all_triples()))
    return index, triples


def _boot_server(tmp_path, transport: str, index: SemTreeIndex):
    live = IngestingIndex(index, tmp_path / f"bench-wal-{transport}.jsonl")
    app = ServerApp(live, workers=ENGINE_WORKERS, background_compaction=False)
    server = create_server(app, transport=transport,
                           **TRANSPORT_KWARGS[transport])
    return server.serve_background()


def _measure(server, payloads, threads: int) -> Dict[str, float]:
    """One steady-state run: QPS, latency and the per-run cache hit rates."""
    engine_before = server.app.engine.cache.stats
    wire_before = _wire_stats(server)
    summary = generate_load(server.url, payloads, threads=threads)
    engine_after = server.app.engine.cache.stats
    wire_after = _wire_stats(server)
    lookups = engine_after.lookups - engine_before.lookups
    summary["cache_hit_rate"] = (
        (engine_after.hits - engine_before.hits) / lookups if lookups else 0.0
    )
    wire_total = (wire_after["hits"] - wire_before["hits"] +
                  wire_after["misses"] - wire_before["misses"])
    summary["wire_cache_hit_rate"] = (
        (wire_after["hits"] - wire_before["hits"]) / wire_total
        if wire_total else 0.0
    )
    return summary


def _wire_stats(server) -> Dict[str, int]:
    stats = getattr(server, "wire_cache_stats", None)
    return stats() if stats is not None else {"hits": 0, "misses": 0}


# -- pytest-benchmark cases ---------------------------------------------------------------

@pytest.mark.benchmark(group="server-throughput")
@pytest.mark.parametrize("transport", ["threaded", "async"])
def test_http_round_trips(benchmark, tmp_path, transport):
    index, triples = _build_corpus_index()
    server = _boot_server(tmp_path, transport, index)
    payloads = query_payloads(triples, REQUEST_COUNT, k=3, radius=0.15,
                              repeat_fraction=0.3, seed=17)
    with server:
        generate_load(server.url, payloads, threads=2)  # warm caches
        benchmark.pedantic(
            lambda: generate_load(server.url, payloads, threads=4),
            rounds=2 if QUICK else 3, iterations=1,
        )


# -- the report itself --------------------------------------------------------------------

def test_report_server_throughput(results_dir, tmp_path):
    index, triples = _build_corpus_index()
    payloads = query_payloads(triples, REQUEST_COUNT, k=3, radius=0.15,
                              repeat_fraction=0.3, seed=17)

    experiment = Experiment(
        experiment_id="server_throughput",
        description="HTTP front-end throughput per transport: QPS and "
                    f"client-observed latency over {REQUEST_COUNT} mixed "
                    "k-NN/range requests, vs concurrent client threads",
        swept_parameter="client_threads",
    )

    for transport in ("threaded", "async"):
        server = _boot_server(tmp_path, transport, index)
        with server:
            _assert_wire_matches_engine(server, payloads, triples)
            generate_load(server.url, payloads, threads=2)  # warmup pass
            experiment.run_sweep(
                transport, THREAD_COUNTS,
                lambda threads: _measure(server, payloads, int(threads)),
            )

        series = experiment.series[transport]
        # Every sweep point must have completed the full workload ...
        assert all(count == len(payloads)
                   for count in series.values("requests"))
        # ... with the repeated queries served out of the right cache.
        if transport == "threaded":
            assert all(rate > 0.0 for rate in series.values("cache_hit_rate"))
        else:
            assert all(rate > 0.5
                       for rate in series.values("wire_cache_hit_rate"))

    threaded_qps = experiment.series["threaded"].values("qps")[-1]
    async_qps = experiment.series["async"].values("qps")[-1]
    threaded_p99 = experiment.series["threaded"].values("latency_ms_p99")[-1]
    async_p99 = experiment.series["async"].values("latency_ms_p99")[-1]
    if not QUICK:
        # The acceptance floor for making the event loop the default
        # transport: twice the threaded QPS at 8 client threads, p99 no
        # worse.  (Quick mode still runs both sweeps but does not gate on
        # the ratio — smoke runners are too noisy for that.)
        assert async_qps >= 2.0 * threaded_qps, \
            f"async {async_qps:.0f} qps < 2x threaded {threaded_qps:.0f} qps"
        assert async_p99 <= threaded_p99, \
            f"async p99 {async_p99:.2f}ms worse than threaded {threaded_p99:.2f}ms"

    write_report(results_dir, experiment,
                 ["qps", "latency_ms_p50", "latency_ms_p90", "latency_ms_p99",
                  "cache_hit_rate", "wire_cache_hit_rate"])


def _assert_wire_matches_engine(server, payloads, triples) -> None:
    """Correctness preamble: HTTP answers equal direct engine answers."""
    from repro.workloads import ServerClient

    client = ServerClient(server.url)
    engine = server.app.engine
    for path, body in payloads[:16]:
        wire = client.request("POST", path, body)
        triple = next(t for t in triples if str(t) == wire_text(body))
        if path.endswith("knn"):
            spec = QuerySpec.k_nearest(triple, body["k"])
        else:
            spec = QuerySpec.range_query(triple, body["radius"])
        direct = engine.execute_sequential([spec])[0]
        assert [m["distance"] for m in wire["matches"]] == pytest.approx(
            [m.distance for m in direct.matches]
        )
    client.close_all()


def wire_text(body) -> str:
    """Reconstruct the Turtle-ish text of a wire triple payload (test helper)."""
    from repro.io.serialization import triple_from_dict

    return str(triple_from_dict(body["triple"]))
