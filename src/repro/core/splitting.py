"""Leaf-splitting strategies.

When a leaf saturates its bucket, SemTree instantiates two child nodes and
redistributes the points.  The paper uses the standard KD-tree rule (split
index ``Sr`` and split value ``Sv``); this module implements several ways of
choosing ``(Sr, Sv)`` so the benchmarks can reproduce both the balanced and
the "totally unbalanced (chain)" configurations of Figures 3, 4 and 6, and
so the ablation bench can compare strategies.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.config import SplitStrategy
from repro.core.point import LabeledPoint
from repro.errors import IndexError_

__all__ = ["SplitDecision", "choose_split", "partition_bucket"]


@dataclass(frozen=True, slots=True)
class SplitDecision:
    """The chosen split: dimension (``Sr``), value (``Sv``) and the two halves."""

    split_index: int
    split_value: float
    left_points: Tuple[LabeledPoint, ...]
    right_points: Tuple[LabeledPoint, ...]


def _spread(points: Sequence[LabeledPoint], dimension: int) -> float:
    values = [point[dimension] for point in points]
    return max(values) - min(values)


def _choose_dimension(points: Sequence[LabeledPoint], depth: int,
                      strategy: SplitStrategy, dimensions: int) -> int:
    if strategy is SplitStrategy.MAX_SPREAD:
        return max(range(dimensions), key=lambda dim: _spread(points, dim))
    if strategy is SplitStrategy.FIRST_POINT:
        # Always split on the first dimension: with points inserted in sorted
        # order this degenerates into the paper's "totally unbalanced (chain)"
        # tree, which is exactly what the strategy exists to reproduce.
        return 0
    # MEDIAN and MIDPOINT cycle the dimension with the depth, as in the
    # classic KD-tree.
    return depth % dimensions


def _choose_value(points: Sequence[LabeledPoint], dimension: int,
                  strategy: SplitStrategy) -> float:
    values = [point[dimension] for point in points]
    if strategy is SplitStrategy.MIDPOINT:
        return (max(values) + min(values)) / 2.0
    if strategy is SplitStrategy.FIRST_POINT:
        return values[0]
    # MEDIAN and MAX_SPREAD both split at the median coordinate.
    return float(statistics.median(values))


def partition_bucket(points: Sequence[LabeledPoint], split_index: int,
                     split_value: float) -> Tuple[List[LabeledPoint], List[LabeledPoint]]:
    """Split a bucket into (left, right) halves: ``point[Sr] <= Sv`` goes left."""
    left = [point for point in points if point[split_index] <= split_value]
    right = [point for point in points if point[split_index] > split_value]
    return left, right


def choose_split(points: Sequence[LabeledPoint], depth: int, dimensions: int,
                 strategy: SplitStrategy = SplitStrategy.MEDIAN) -> SplitDecision:
    """Choose ``(Sr, Sv)`` for a saturated bucket and partition its points.

    The function guarantees that neither half is empty whenever that is
    possible: if the initial choice puts every point on one side (all values
    equal to the median, or a degenerate FIRST_POINT choice), it retries the
    other strategies and dimensions and finally falls back to an uneven but
    legal split below the maximum value.

    Raises
    ------
    IndexError_
        If every point has identical coordinates (no split can separate them).
    """
    if len(points) < 2:
        raise IndexError_("cannot split a bucket with fewer than two points")

    attempted: List[Tuple[int, float]] = []
    strategies = [strategy] + [s for s in SplitStrategy if s is not strategy]
    for candidate_strategy in strategies:
        for offset in range(dimensions):
            dimension = (_choose_dimension(points, depth + offset, candidate_strategy,
                                           dimensions))
            value = _choose_value(points, dimension, candidate_strategy)
            attempted.append((dimension, value))
            left, right = partition_bucket(points, dimension, value)
            if left and right:
                return SplitDecision(dimension, value, tuple(left), tuple(right))

    # Last resort: any dimension where not all values are identical, split
    # strictly below the maximum so the right side is non-empty.
    for dimension in range(dimensions):
        values = sorted(point[dimension] for point in points)
        if values[0] != values[-1]:
            below_max = max(value for value in values if value < values[-1])
            left, right = partition_bucket(points, dimension, below_max)
            return SplitDecision(dimension, below_max, tuple(left), tuple(right))

    raise IndexError_(
        "cannot split a bucket whose points all have identical coordinates; "
        "increase the bucket size or deduplicate the input"
    )
