"""The delta segment: freshly inserted points, queryable before compaction.

The delta is the memtable of the LSM analogy: an append-only, in-memory list
of FastMap-projected points that absorbs the insert stream while the
distributed tree stays immutable between compactions.  Queries linear-scan
it — it is bounded by the compaction threshold, so the scan is a small
constant on top of the tree search — and the merge is *exact*:

* k-NN: the merged top-``k`` of tree ∪ delta is a subset of the tree's own
  top-``k`` plus the delta (extra candidates can only displace tree points,
  never resurrect one the tree already ranked out), so offering every delta
  point to the tree's result list reproduces a from-scratch rebuild.
* range: results are a plain union — ``range(tree ∪ delta) =
  range(tree) ∪ range(delta)``.

Appends and snapshots are guarded by a mutex; snapshots are immutable
tuples, so readers merge against a frozen prefix of the insert stream
(linearizable visibility) while inserters keep appending.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

import numpy as np

from repro.core import kernels
from repro.core.kernels import DEFAULT_SCAN_KERNEL, validate_scan_kernel
from repro.core.knn import Neighbour
from repro.core.point import LabeledPoint, euclidean_distance

__all__ = ["DeltaIndex"]


class DeltaIndex:
    """The in-memory linear-scan segment of an :class:`IngestingIndex`.

    With the default ``"numpy"`` scan kernel the overlay scan runs as one
    matrix pass over a lazily-built coordinate matrix, rebuilt only after the
    delta has changed (append or drain); the ``"scalar"`` kernel keeps the
    original per-point loop as the correctness oracle.
    """

    def __init__(self, scan_kernel: str = DEFAULT_SCAN_KERNEL) -> None:
        self._lock = threading.Lock()
        self._points: List[LabeledPoint] = []
        self._last_seq = 0
        self.scan_kernel = validate_scan_kernel(scan_kernel)
        self._matrix: Optional[np.ndarray] = None

    # -- writes -------------------------------------------------------------------------

    def add(self, point: LabeledPoint, seq: int) -> None:
        """Append one projected point, carrying its WAL sequence number."""
        with self._lock:
            self._points.append(point)
            self._last_seq = seq
            self._matrix = None

    def drain(self) -> Tuple[Tuple[LabeledPoint, ...], int]:
        """Atomically take every point out (compaction); returns ``(points, last_seq)``.

        ``last_seq`` is the WAL sequence number of the newest drained point —
        after the fold it becomes the index's *applied* sequence, the replay
        cut-off recorded by checkpoints.
        """
        with self._lock:
            points = tuple(self._points)
            self._points = []
            self._matrix = None
            return points, self._last_seq

    # -- reads --------------------------------------------------------------------------

    def points(self) -> Tuple[LabeledPoint, ...]:
        """An immutable snapshot of the current delta contents."""
        with self._lock:
            return tuple(self._points)

    def _snapshot(self) -> Tuple[Tuple[LabeledPoint, ...], Optional[np.ndarray]]:
        """A consistent (points, matrix) pair; the matrix is rebuilt lazily.

        Both the cached matrix and the returned tuple cover the same frozen
        prefix of the insert stream — appends after the snapshot produce a
        fresh matrix on the next read instead of mutating this one.  The
        scalar oracle never needs (or pays for) the matrix.
        """
        with self._lock:
            points = tuple(self._points)
            if not points or self.scan_kernel != "numpy":
                return points, None
            if self._matrix is None:
                self._matrix = kernels.coordinate_matrix(points)
            return points, self._matrix

    def all_neighbours(self, query: LabeledPoint) -> List[Neighbour]:
        """Every delta point with its distance to ``query``.

        Every distance must be materialised here, so there is nothing for the
        vectorized kernel to prune — both kernels run the same exact loop.
        k-NN merges should prefer :meth:`k_nearest`, which only pays for the
        ``k`` winners.
        """
        return [
            Neighbour(point, euclidean_distance(query, point))
            for point in self.points()
        ]

    def k_nearest(self, query: LabeledPoint, k: int) -> List[Neighbour]:
        """The delta's own ``k`` closest points (k-NN merge side).

        The merged top-``k`` of tree ∪ delta can contain at most ``k`` delta
        points, so this is all the overlay needs.  Under the ``"numpy"``
        kernel the selection runs on one squared-distance matrix pass and
        only the winners get an exact ``math.dist`` distance.
        """
        points, matrix = self._snapshot()
        return kernels.linear_knn(points, query, k, matrix, kernel=self.scan_kernel)

    def neighbours_within(self, query: LabeledPoint, radius: float) -> List[Neighbour]:
        """Delta points within ``radius`` of ``query``, closest first (range merge side)."""
        points, matrix = self._snapshot()
        return kernels.linear_range(points, query, radius, matrix,
                                    kernel=self.scan_kernel)

    @property
    def last_seq(self) -> int:
        """WAL sequence number of the newest point currently in the delta."""
        with self._lock:
            return self._last_seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)

    def __repr__(self) -> str:
        return f"DeltaIndex(points={len(self)}, last_seq={self.last_seq})"
