"""Tests for corpus-based information content."""

import pytest

from repro.errors import VocabularyError
from repro.rdf import Triple
from repro.semantics import InformationContentCorpus, LinSimilarity


@pytest.fixture
def corpus(small_taxonomy) -> InformationContentCorpus:
    return InformationContentCorpus(small_taxonomy)


class TestObservation:
    def test_observation_propagates_to_ancestors(self, corpus):
        corpus.observe("sports_car", 3)
        assert corpus.count("sports_car") == 3 + corpus.smoothing
        assert corpus.count("car") == 3 + corpus.smoothing
        assert corpus.count("vehicle") == 3 + corpus.smoothing
        assert corpus.count("animal") == corpus.smoothing

    def test_unknown_concept_rejected(self, corpus):
        with pytest.raises(VocabularyError):
            corpus.observe("missing")

    def test_observe_triples_skips_literals_and_unknowns(self, corpus):
        triples = [
            Triple.of("dog", "car", "'a literal'"),
            Triple.of("unknown_concept", "cat", "truck"),
        ]
        observed = corpus.observe_triples(triples)
        assert observed == 4  # dog, car, cat, truck
        assert corpus.total_observations == 4

    def test_total_observations(self, corpus):
        corpus.observe("dog")
        corpus.observe("cat", 2)
        assert corpus.total_observations == 3


class TestInformationContent:
    def test_probabilities_sum_behaviour(self, corpus):
        corpus.observe("dog", 10)
        assert 0.0 < corpus.probability("dog") < 1.0

    def test_rare_concepts_have_higher_ic(self, corpus):
        corpus.observe("dog", 100)
        corpus.observe("cat", 1)
        assert corpus.information_content("cat") > corpus.information_content("dog")

    def test_ancestors_have_lower_ic_than_descendants(self, corpus):
        corpus.observe("sports_car", 5)
        corpus.observe("truck", 5)
        assert corpus.information_content("vehicle") < corpus.information_content("sports_car")

    def test_as_mapping_covers_taxonomy_and_root(self, corpus, small_taxonomy):
        mapping = corpus.as_mapping()
        assert set(small_taxonomy).issubset(mapping)
        assert small_taxonomy.root in mapping

    def test_mapping_feeds_lin_similarity(self, corpus, small_taxonomy):
        corpus.observe("dog", 5)
        corpus.observe("cat", 5)
        measure = LinSimilarity(small_taxonomy, information_content=corpus.as_mapping())
        assert 0.0 <= measure.similarity("dog", "cat") <= 1.0

    def test_unknown_concept_count_rejected(self, corpus):
        with pytest.raises(VocabularyError):
            corpus.count("missing")
