"""The serving layer above :class:`~repro.core.semtree.SemTreeIndex`.

Turns the one-query-at-a-time index into a query-serving engine:

* :mod:`repro.service.planner` — query specs, embedding-once normalisation,
  in-batch deduplication and cache keys;
* :mod:`repro.service.cache` — LRU + TTL result cache with generation-based
  invalidation (stale answers are never served after incremental inserts);
* :mod:`repro.service.engine` — concurrent batch execution over a thread
  pool, per-query deadlines, sequential-equivalence guarantee;
* :mod:`repro.service.snapshot` — save/load of a built index so a service
  warm-starts instead of re-embedding and re-building;
* :mod:`repro.service.metrics` — QPS, latency percentiles, cache hit rate
  and per-partition load counters.

See ``docs/service.md`` for the subsystem guide.
"""

from repro.service.cache import CacheStats, ResultCache
from repro.service.engine import QueryEngine, QueryResult
from repro.service.metrics import IngestMetrics, ServiceMetrics, percentile
from repro.service.planner import (PlannedQuery, QueryKind, QueryPlanner, QuerySpec,
                                   ServableIndex)
from repro.service.snapshot import (SNAPSHOT_FORMAT, SNAPSHOT_VERSION, load_index,
                                    save_index, snapshot_wal_seq)

__all__ = [
    "QueryEngine",
    "QueryResult",
    "QueryPlanner",
    "PlannedQuery",
    "QuerySpec",
    "QueryKind",
    "ServableIndex",
    "ResultCache",
    "CacheStats",
    "ServiceMetrics",
    "IngestMetrics",
    "percentile",
    "save_index",
    "load_index",
    "snapshot_wal_seq",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
]
