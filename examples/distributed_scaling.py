"""Distributed scaling: how partitions affect building and query cost.

This example exercises the distributed side of SemTree directly (Figures 3,
5 and 7 of the paper): it builds the index over the same point workload with
1, 3, 5 and 9 partitions on a simulated 8-node cluster, and reports

* the simulated parallel building cost (critical path),
* the simulated cost of a batch of k-nearest queries (K = 3),
* the simulated cost of a batch of range queries,
* the number of inter-partition messages,

so the effect of partitioning can be read off a single table.

Run with::

    python examples/distributed_scaling.py
"""

from __future__ import annotations

from repro.cluster import SimulatedCluster
from repro.core import DistributedSemTree, SemTreeConfig
from repro.core.stats import distributed_stats
from repro.evaluation import measure
from repro.workloads import perturbed_queries, uniform_points

POINTS = 8000
DIMENSIONS = 4
QUERIES = 50
PARTITION_COUNTS = (1, 3, 5, 9)


def run_configuration(partitions: int):
    """Build and query a distributed SemTree with the given partition count."""
    points = uniform_points(POINTS, DIMENSIONS, seed=1)
    cluster = SimulatedCluster(node_count=8)
    config = SemTreeConfig(
        dimensions=DIMENSIONS, bucket_size=16, max_partitions=partitions,
        partition_capacity=max(64, 16 * partitions),
    )
    tree = DistributedSemTree(config, cluster=cluster)

    build = measure(lambda: tree.insert_all(points), cluster=cluster)
    workload = perturbed_queries(points, QUERIES, k=3, radius=0.05, seed=2)
    knn = measure(lambda: [tree.k_nearest(q, workload.k) for q in workload], cluster=cluster)
    rng = measure(lambda: [tree.range_query(q, workload.radius) for q in workload],
                  cluster=cluster)
    stats = distributed_stats(tree)
    return build, knn, rng, stats


def main() -> None:
    print(f"Workload: {POINTS} points, {QUERIES} queries, K=3")
    header = (f"{'partitions':>10}  {'build (sim)':>12}  {'knn batch (sim)':>15}  "
              f"{'range batch (sim)':>17}  {'messages':>9}  {'data spread':>11}")
    print(header)
    print("-" * len(header))
    for partitions in PARTITION_COUNTS:
        build, knn, rng, stats = run_configuration(partitions)
        spread = stats["data_partition_imbalance"]
        print(f"{partitions:>10}  {build.simulated_critical_path:>12.0f}  "
              f"{knn.simulated_critical_path:>15.0f}  "
              f"{rng.simulated_critical_path:>17.0f}  "
              f"{stats['messages']:>9}  {spread:>11.2f}")
    print("\nLower simulated cost with more partitions = the parallel benefit the "
          "paper reports; the message column shows the communication price paid for it.")


if __name__ == "__main__":
    main()
