"""Figure 4 — Sequential k-nearest running time (K = 3).

The paper plots the running time of the sequential k-nearest algorithm while
varying the size of the tree, for a balanced tree and for a "totally
unbalanced (chain)" tree.  Expected shape: the balanced curve stays almost
flat (logarithmic search), the chain curve grows roughly linearly and is
always above the balanced one.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.core import KDTree
from repro.evaluation import Experiment, measure
from repro.workloads import perturbed_queries, uniform_points

from .conftest import write_report

DIMENSIONS = 4
BUCKET_SIZE = 16
K = 3
POINT_COUNTS = (1_000, 2_000, 4_000, 8_000, 16_000)
QUERIES = 50
BENCH_POINTS = 8_000


def _trees(count: int):
    points = uniform_points(count, DIMENSIONS, seed=1)
    balanced = KDTree.build_balanced(points, bucket_size=BUCKET_SIZE)
    chain = KDTree.build_chain(points)
    return points, balanced, chain


def _query_batch(tree: KDTree, points, *, seed: int = 2) -> Dict[str, float]:
    workload = perturbed_queries(points, QUERIES, k=K, seed=seed)
    nodes_visited = 0

    def run():
        nonlocal nodes_visited
        nodes_visited = 0
        for query in workload:
            state = tree.k_nearest_state(query, K)
            nodes_visited += state.nodes_visited

    sample = measure(run)
    return {
        "wall_ms_per_query": sample.wall_ms / QUERIES,
        "nodes_visited_per_query": nodes_visited / QUERIES,
    }


# -- pytest-benchmark cases ---------------------------------------------------------------

@pytest.mark.benchmark(group="fig4-sequential-knn")
def test_knn_balanced_tree(benchmark):
    points, balanced, _ = _trees(BENCH_POINTS)
    workload = perturbed_queries(points, QUERIES, k=K, seed=2)

    def run():
        return sum(len(balanced.k_nearest(query, K)) for query in workload)

    assert benchmark(run) == QUERIES * K


@pytest.mark.benchmark(group="fig4-sequential-knn")
def test_knn_unbalanced_chain_tree(benchmark):
    points, _, chain = _trees(BENCH_POINTS)
    workload = perturbed_queries(points, QUERIES, k=K, seed=2)

    def run():
        return sum(len(chain.k_nearest(query, K)) for query in workload)

    assert benchmark.pedantic(run, rounds=3, iterations=1) == QUERIES * K


# -- the figure itself ----------------------------------------------------------------------

@pytest.mark.benchmark(group="fig4-sequential-knn")
def test_report_fig4(benchmark, results_dir):
    def run_sweep() -> Experiment:
        experiment = Experiment(
            experiment_id="fig4_sequential_knn_time",
            description="Sequential k-nearest time (K=3) vs number of points (Fig. 4)",
            swept_parameter="points",
        )
        for count in POINT_COUNTS:
            points, balanced, chain = _trees(count)
            experiment.record("balanced", count, **_query_batch(balanced, points))
            experiment.record("totally unbalanced (chain)", count, **_query_batch(chain, points))
        return experiment

    experiment = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    balanced = experiment.series["balanced"]
    chain = experiment.series["totally unbalanced (chain)"]
    # The chain visits more nodes than the balanced tree at every size, and
    # the gap widens with the number of points.
    for balanced_point, chain_point in zip(balanced.points, chain.points):
        assert (chain_point.metric("nodes_visited_per_query")
                > balanced_point.metric("nodes_visited_per_query"))
    assert chain.is_non_decreasing("nodes_visited_per_query",
                                   tolerance=chain.values("nodes_visited_per_query")[-1] * 0.1)
    ratio_small = (chain.values("nodes_visited_per_query")[0]
                   / balanced.values("nodes_visited_per_query")[0])
    ratio_large = (chain.values("nodes_visited_per_query")[-1]
                   / balanced.values("nodes_visited_per_query")[-1])
    assert ratio_large > ratio_small
    # Wall-clock: the chain is slower at the largest size.
    assert (chain.values("wall_ms_per_query")[-1]
            > balanced.values("wall_ms_per_query")[-1])

    write_report(results_dir, experiment, ["wall_ms_per_query", "nodes_visited_per_query"])
