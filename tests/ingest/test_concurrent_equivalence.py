"""The acceptance property: mixed insert/query workloads equal a rebuild oracle.

Two layers of evidence:

* property-style *deterministic interleavings* — random (seeded) shuffles of
  inserts and queries are applied one step at a time; after every step each
  query through the :class:`QueryEngine` must answer exactly like an index
  rebuilt from scratch over the triples inserted so far;
* a genuinely *threaded* mixed workload — inserter threads stream triples
  while query threads hammer the engine and the background compactor folds;
  every answer must be exact for the prefix of the insert stream it
  observed, and the final quiesced state must equal the full oracle.
"""

import random
import threading

import pytest

from ingest_corpus import BASE_TRIPLES, INSERT_TRIPLES, QUERY_TRIPLES, canonical
from repro.ingest import BackgroundCompactor, IngestingIndex
from repro.service import QueryEngine, QuerySpec


def rebuild_oracle(make_base, inserted):
    oracle = make_base()
    for triple in inserted:
        oracle.insert_triple(triple)
    return oracle


class TestDeterministicInterleavings:
    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_every_interleaving_matches_the_rebuild_oracle(self, make_base, tmp_path,
                                                           seed):
        rng = random.Random(seed)
        operations = (
            [("insert", triple) for triple in INSERT_TRIPLES]
            + [("knn", (query, rng.randint(1, 5))) for query in QUERY_TRIPLES]
            + [("range", (query, rng.choice([0.05, 0.2, 0.4])))
               for query in QUERY_TRIPLES]
        )
        rng.shuffle(operations)

        ingesting = IngestingIndex(make_base(), tmp_path / f"wal-{seed}.jsonl",
                                   compaction_threshold=3)
        inserted = []
        with QueryEngine(ingesting, workers=2) as engine:
            for operation, payload in operations:
                if operation == "insert":
                    ingesting.insert(payload)
                    inserted.append(payload)
                    if ingesting.should_compact():
                        ingesting.compact()
                    continue
                oracle = rebuild_oracle(make_base, inserted)
                if operation == "knn":
                    query, k = payload
                    served = engine.execute(QuerySpec.k_nearest(query, k))
                    expected = oracle.k_nearest(query, k)
                else:
                    query, radius = payload
                    served = engine.execute(QuerySpec.range_query(query, radius))
                    expected = oracle.range_query(query, radius)
                assert served.ok
                assert canonical(served.matches) == canonical(expected), \
                    (operation, str(payload))

    def test_batches_interleaved_with_inserts_match_the_oracle(self, make_base,
                                                               tmp_path):
        ingesting = IngestingIndex(make_base(), tmp_path / "wal.jsonl",
                                   compaction_threshold=2)
        specs = [QuerySpec.k_nearest(query, 3) for query in QUERY_TRIPLES]
        inserted = []
        with QueryEngine(ingesting, workers=3) as engine:
            for triple in INSERT_TRIPLES:
                ingesting.insert(triple)
                inserted.append(triple)
                if ingesting.should_compact():
                    ingesting.compact()
                oracle = rebuild_oracle(make_base, inserted)
                for spec, result in zip(specs, engine.execute_batch(specs)):
                    assert canonical(result.matches) == \
                        canonical(oracle.k_nearest(spec.triple, spec.k))


class TestThreadedMixedWorkload:
    def test_no_quiescing_and_exact_prefix_answers(self, make_base, tmp_path):
        """Queries and inserts genuinely interleave: no coordination beyond
        the index's own locks, every answer exact for an observed prefix."""
        ingesting = IngestingIndex(make_base(), tmp_path / "wal.jsonl",
                                   compaction_threshold=3)
        stream = INSERT_TRIPLES * 3  # duplicates included on purpose
        errors = []
        # Pre-compute every legal prefix answer so query threads can assert
        # without re-running FastMap in the oracle while threads interleave.
        query, k = QUERY_TRIPLES[0], 3
        legal = []
        for prefix in range(len(stream) + 1):
            oracle = rebuild_oracle(make_base, stream[:prefix])
            legal.append(canonical(oracle.k_nearest(query, k)))
        spec = QuerySpec.k_nearest(query, k)

        with QueryEngine(ingesting, workers=3) as engine, \
                BackgroundCompactor(ingesting, poll_interval=0.005):

            def insert_worker():
                try:
                    for triple in stream:
                        ingesting.insert(triple)
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)

            def query_worker():
                try:
                    for _ in range(40):
                        result = engine.execute(spec)
                        assert result.ok
                        answer = canonical(result.matches)
                        assert answer in legal, answer
                except Exception as error:
                    errors.append(error)

            threads = [threading.Thread(target=insert_worker)] + [
                threading.Thread(target=query_worker) for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert errors == []
            # quiesced end state: every insert visible, exact final answer
            final = engine.execute(spec)
            assert canonical(final.matches) == legal[-1]
            assert len(ingesting) == len(BASE_TRIPLES) + len(stream)

        stats = ingesting.statistics()
        assert stats["inserts"] == len(stream)
        assert stats["compactions"] >= 1

    def test_threaded_stream_then_recovery_round_trip(self, make_base, distance,
                                                      tmp_path):
        """Concurrent stream, checkpoint mid-flight, crash, recover: the
        recovered index equals the full oracle."""
        wal_path = tmp_path / "wal.jsonl"
        snap_path = tmp_path / "snap.json"
        ingesting = IngestingIndex(make_base(), wal_path, compaction_threshold=4)
        half = len(INSERT_TRIPLES) // 2

        for triple in INSERT_TRIPLES[:half]:
            ingesting.insert(triple)
        ingesting.checkpoint(snap_path, compact_first=True, truncate_wal=False)

        inserters = [
            threading.Thread(target=ingesting.insert, args=(triple,))
            for triple in INSERT_TRIPLES[half:]
        ]
        for thread in inserters:
            thread.start()
        for thread in inserters:
            thread.join()
        del ingesting  # crash: no close, no final checkpoint

        recovered = IngestingIndex.recover(snap_path, wal_path, distance)
        oracle = rebuild_oracle(make_base, INSERT_TRIPLES)
        for query in QUERY_TRIPLES:
            assert canonical(recovered.k_nearest(query, 5)) == \
                canonical(oracle.k_nearest(query, 5))
