"""Tests for the linear-scan baselines (embedded-space and semantic)."""

import pytest

from repro.baselines import LinearScanIndex, SemanticLinearScan
from repro.core import LabeledPoint
from repro.errors import QueryError
from repro.rdf import Triple


class TestLinearScanIndex:
    def test_knn_returns_exact_closest_points(self, uniform_points_2d):
        scan = LinearScanIndex(uniform_points_2d)
        query = LabeledPoint.of([0.5, 0.5])
        neighbours = scan.k_nearest(query, 5)
        assert len(neighbours) == 5
        distances = [n.distance for n in neighbours]
        assert distances == sorted(distances)
        # nothing outside the result set is closer than the worst retained point
        worst = distances[-1]
        retained = {n.point for n in neighbours}
        for point in uniform_points_2d:
            if point not in retained:
                assert point.distance_to(query) >= worst

    def test_knn_with_k_larger_than_data(self):
        scan = LinearScanIndex([LabeledPoint.of([0.0, 0.0])])
        assert len(scan.k_nearest(LabeledPoint.of([1.0, 1.0]), 10)) == 1

    def test_invalid_k_rejected(self, uniform_points_2d):
        with pytest.raises(QueryError):
            LinearScanIndex(uniform_points_2d).k_nearest(LabeledPoint.of([0.0, 0.0]), 0)

    def test_range_query_filters_by_radius(self, uniform_points_2d):
        scan = LinearScanIndex(uniform_points_2d)
        query = LabeledPoint.of([0.5, 0.5])
        results = scan.range_query(query, 0.2)
        assert all(n.distance <= 0.2 for n in results)
        expected = sum(1 for p in uniform_points_2d if p.distance_to(query) <= 0.2)
        assert len(results) == expected

    def test_negative_radius_rejected(self, uniform_points_2d):
        with pytest.raises(QueryError):
            LinearScanIndex(uniform_points_2d).range_query(LabeledPoint.of([0.0, 0.0]), -1)

    def test_insert_and_len(self):
        scan = LinearScanIndex()
        scan.insert(LabeledPoint.of([1.0]))
        scan.insert_all([LabeledPoint.of([2.0]), LabeledPoint.of([3.0])])
        assert len(scan) == 3
        assert len(scan.points()) == 3


class TestSemanticLinearScan:
    @pytest.fixture
    def triples(self):
        return [
            Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up"),
            Triple.of("OBSW001", "Fun:block_cmd", "CmdType:start-up"),
            Triple.of("OBSW002", "Fun:send_msg", "MsgType:heartbeat"),
            Triple.of("HWD001", "Fun:acquire_in", "InType:gps-fix"),
        ]

    def test_knn_orders_by_semantic_distance(self, requirement_distance, triples):
        scan = SemanticLinearScan(requirement_distance, triples)
        query = Triple.of("OBSW001", "Fun:block_cmd", "CmdType:start-up")
        ranked = scan.k_nearest(query, 3)
        assert ranked[0][0] == query            # the identical triple ranks first
        assert ranked[0][1] == 0.0
        assert ranked[1][0] == triples[0]       # the antinomic statement comes next
        assert [score for _, score in ranked] == sorted(score for _, score in ranked)

    def test_range_query_threshold(self, requirement_distance, triples):
        scan = SemanticLinearScan(requirement_distance, triples)
        query = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        results = scan.range_query(query, 0.1)
        assert all(score <= 0.1 for _, score in results)
        assert (query, 0.0) in results

    def test_invalid_arguments_rejected(self, requirement_distance, triples):
        scan = SemanticLinearScan(requirement_distance, triples)
        with pytest.raises(QueryError):
            scan.k_nearest(triples[0], 0)
        with pytest.raises(QueryError):
            scan.range_query(triples[0], -0.5)

    def test_add_and_len(self, requirement_distance):
        scan = SemanticLinearScan(requirement_distance)
        scan.add(Triple.of("a", "b", "c"))
        scan.add_all([Triple.of("d", "e", "f")])
        assert len(scan) == 2
        assert len(scan.triples()) == 2
