"""Shared fixtures for the HTTP front-end test suite.

Every end-to-end test boots a *real* server: a ``ThreadingHTTPServer`` on
an ephemeral port of the loopback interface, talked to through the stdlib
:class:`~repro.workloads.http_client.ServerClient`.
"""

from __future__ import annotations

import pytest

from server_corpus import ALL_TRIPLES, BASE_TRIPLES
from repro.core import SemTreeConfig, SemTreeIndex
from repro.ingest import IngestingIndex
from repro.requirements import build_requirement_distance, build_requirement_vocabularies
from repro.server import ServerApp, create_server
from repro.server.bootstrap import vocabulary_hints
from repro.workloads import ServerClient


@pytest.fixture(scope="session")
def distance():
    # Built over the hints of every triple the suite may store, exactly the
    # construction `derive_distance` reproduces from the on-disk state.
    actors, parameter_values = vocabulary_hints(ALL_TRIPLES)
    return build_requirement_distance(
        build_requirement_vocabularies(actors, parameter_values)
    )


@pytest.fixture
def make_base(distance):
    """Factory building a fresh, deterministic base index over BASE_TRIPLES."""

    def build() -> SemTreeIndex:
        index = SemTreeIndex(distance, SemTreeConfig(
            dimensions=3, bucket_size=4, max_partitions=2, partition_capacity=8,
        ))
        index.add_triples(BASE_TRIPLES)
        index.build()
        return index

    return build


@pytest.fixture
def make_server(make_base, tmp_path):
    """Factory booting a live server; everything is torn down at test exit.

    Returns ``start(**kwargs) -> (server, client)``; keyword arguments are
    forwarded to :class:`ServerApp` (``compaction_threshold`` to the
    :class:`IngestingIndex`).  The WAL lands in ``tmp_path/wal.jsonl`` and
    the default checkpoint path is ``tmp_path/snapshot.json``.
    """
    started = []

    def start(*, compaction_threshold: int = 64, wal_name: str = "wal.jsonl",
              **app_kwargs):
        live = IngestingIndex(make_base(), tmp_path / wal_name,
                              compaction_threshold=compaction_threshold)
        app_kwargs.setdefault("checkpoint_path", tmp_path / "snapshot.json")
        app = ServerApp(live, **app_kwargs)
        server = create_server(app).serve_background()
        started.append(server)
        return server, ServerClient(server.url)

    yield start
    for server in started:
        if not server.app.closed:
            server.close(checkpoint=False)


@pytest.fixture
def make_transport_server(make_base, tmp_path):
    """Like ``make_server``, but with an explicit transport choice.

    The protocol-conformance tests (fuzz, slow clients, drain, wire
    oracle) boot *both* transports side by side and compare them, so they
    cannot rely on the environment-driven default ``make_server`` uses.
    Returns ``start(transport, **kwargs) -> server``; ``server_kwargs``
    are forwarded to :func:`create_server`, everything else to
    :class:`ServerApp`.
    """
    started = []

    def start(transport, *, compaction_threshold: int = 64,
              server_kwargs=None, **app_kwargs):
        tag = f"{transport}-{len(started)}"
        live = IngestingIndex(make_base(), tmp_path / f"wal-{tag}.jsonl",
                              compaction_threshold=compaction_threshold)
        app_kwargs.setdefault("checkpoint_path", tmp_path / f"snapshot-{tag}.json")
        app = ServerApp(live, **app_kwargs)
        server = create_server(app, transport=transport, **(server_kwargs or {}))
        server.serve_background()
        started.append(server)
        return server

    yield start
    for server in started:
        if not server.app.closed:
            server.close(checkpoint=False)
