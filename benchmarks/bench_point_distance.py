"""Point-distance fast path — ``math.dist`` vs the old per-pair generator.

``euclidean_distance`` is the hot path of every leaf scan: k-search examines
every point of every visited bucket with it.  The seed implementation summed
``(x - y) ** 2`` with a Python generator per pair; the fast path hands the
coordinate tuples to ``math.dist``, which runs the loop in C.  This
benchmark shows the delta and pins the two implementations to identical
values.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence, Tuple

import pytest

from repro.core import LabeledPoint, euclidean_distance, squared_euclidean_distance
from repro.evaluation import Experiment, WallClockTimer
from repro.workloads import uniform_points

from .conftest import write_report

DIMENSIONS = (2, 4, 8, 16)
PAIRS = 2_000
REPEATS = 5


def _generator_euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    """The seed implementation, kept here as the benchmark baseline."""
    return math.sqrt(sum((x - y) * (x - y) for x, y in zip(a, b)))


def _point_pairs(dimensions: int, *, seed: int = 3) -> List[Tuple[LabeledPoint, LabeledPoint]]:
    points = uniform_points(2 * PAIRS, dimensions, seed=seed)
    return [(points[2 * i], points[2 * i + 1]) for i in range(PAIRS)]


def _time_distance_calls(pairs, implementation) -> float:
    with WallClockTimer() as timer:
        for _ in range(REPEATS):
            for a, b in pairs:
                implementation(a.coordinates, b.coordinates)
    return timer.elapsed


def _measure(dimensions: int) -> Dict[str, float]:
    pairs = _point_pairs(int(dimensions))
    baseline = _time_distance_calls(pairs, _generator_euclidean)
    fast = _time_distance_calls(pairs, euclidean_distance)
    calls = REPEATS * PAIRS
    return {
        "baseline_us_per_call": baseline / calls * 1e6,
        "fast_us_per_call": fast / calls * 1e6,
        "speedup": baseline / max(fast, 1e-12),
    }


# -- pytest-benchmark cases ---------------------------------------------------------------

@pytest.mark.benchmark(group="point-distance")
def test_fast_path(benchmark):
    pairs = _point_pairs(4)
    total = benchmark(lambda: sum(euclidean_distance(a, b) for a, b in pairs))
    assert total > 0


@pytest.mark.benchmark(group="point-distance")
def test_generator_baseline(benchmark):
    pairs = _point_pairs(4)
    total = benchmark(lambda: sum(
        _generator_euclidean(a.coordinates, b.coordinates) for a, b in pairs
    ))
    assert total > 0


# -- the report itself --------------------------------------------------------------------

def test_report_point_distance(results_dir):
    # The fast path must agree with the baseline bit-for-bit in value terms.
    rng = random.Random(11)
    for _ in range(200):
        dims = rng.choice(DIMENSIONS)
        a = [rng.uniform(-100, 100) for _ in range(dims)]
        b = [rng.uniform(-100, 100) for _ in range(dims)]
        assert euclidean_distance(a, b) == pytest.approx(_generator_euclidean(a, b))
        assert squared_euclidean_distance(a, b) == pytest.approx(
            _generator_euclidean(a, b) ** 2
        )

    experiment = Experiment(
        experiment_id="point_distance_fastpath",
        description="euclidean_distance: math.dist fast path vs per-pair generator "
                    f"({PAIRS} pairs x {REPEATS} repeats)",
        swept_parameter="dimensions",
    )
    experiment.run_sweep("distance", DIMENSIONS, _measure)

    series = experiment.series["distance"]
    # The C loop must win at every dimensionality (generously margined: the
    # observed delta is several-fold).
    assert all(speedup > 1.2 for speedup in series.values("speedup"))

    write_report(results_dir, experiment,
                 ["baseline_us_per_call", "fast_us_per_call", "speedup"])
