"""Seeded HTTP-framing fuzzer: both transports, same wire behaviour.

Every case is raw bytes on a raw socket — no ``http.client`` to paper
over framing mistakes.  The suite pins three properties for each
malformed (or deliberately torn) request:

1. **No hangs, no crashes** — a response (or a clean close) arrives
   within the read timeout, whatever bytes were thrown at the parser.
2. **Transport parity** — the threaded and async transports answer the
   *same* status for the same bytes, because both run the shared
   :mod:`repro.server.protocol` framing layer.
3. **The server survives** — after every case the same listener still
   answers a well-formed request.

Chunking is randomised from a fixed seed: each payload is re-sent split
at different byte boundaries, which is exactly the torn-read surface an
event-loop parser gets wrong first.
"""

from __future__ import annotations

import json
import random
import select
import socket
import time
import zlib

import pytest

from server_corpus import BASE_TRIPLES
from repro.server.protocol import MAX_BODY_BYTES, MAX_REQUEST_LINE_BYTES
from repro.workloads import ServerClient

SEED = 0xC0FFEE
READ_TIMEOUT = 10.0

_KNN_BODY = json.dumps(ServerClient.knn_payload(BASE_TRIPLES[0], 2)).encode()


def _post(route: bytes, headers: bytes, body: bytes = b"") -> bytes:
    return (b"POST " + route + b" HTTP/1.1\r\nHost: fuzz\r\n" + headers +
            b"\r\n" + body)


#: (name, payload bytes, statuses either transport may answer).  A case
#: whose status set has one element pins the exact code; the parity check
#: additionally requires both transports to pick the *same* element.
CASES = [
    ("garbage_line",
     b"\x16\x03\x01 this is not http\r\n\r\n", {400}),
    ("missing_version",
     b"GET /v1/healthz\r\n\r\n", {400}),
    ("bad_version",
     b"GET /v1/healthz HTTP/2.0\r\n\r\n", {505}),
    ("unknown_method",
     b"BREW /v1/knn HTTP/1.1\r\nHost: fuzz\r\n\r\n", {501}),
    ("request_line_too_long",
     b"GET /" + b"a" * (MAX_REQUEST_LINE_BYTES + 512) + b" HTTP/1.1\r\n\r\n",
     {414}),
    ("oversized_headers",
     b"GET /v1/healthz HTTP/1.1\r\n" +
     b"".join(b"X-Pad-%d: %s\r\n" % (i, b"p" * 900) for i in range(80)) +
     b"\r\n", {431}),
    ("header_without_colon",
     b"GET /v1/healthz HTTP/1.1\r\nnot-a-header\r\n\r\n", {400}),
    ("bad_content_length",
     _post(b"/v1/knn", b"Content-Type: application/json\r\n"
           b"Content-Length: banana\r\n"), {411}),
    ("negative_content_length",
     _post(b"/v1/knn", b"Content-Type: application/json\r\n"
           b"Content-Length: -5\r\n"), {411}),
    ("huge_content_length",
     _post(b"/v1/knn", b"Content-Type: application/json\r\n"
           b"Content-Length: %d\r\n" % (MAX_BODY_BYTES + 1)), {413}),
    ("chunked_body",
     _post(b"/v1/knn", b"Content-Type: application/json\r\n"
           b"Transfer-Encoding: chunked\r\n"), {501}),
    ("wrong_content_type",
     _post(b"/v1/knn", b"Content-Type: text/plain\r\nContent-Length: 2\r\n"),
     {415}),
    ("unknown_route",
     _post(b"/v1/nothing-here", b"Content-Type: application/json\r\n"
           b"Content-Length: 2\r\n"), {404}),
    ("method_not_allowed",
     b"GET /v1/knn HTTP/1.1\r\nHost: fuzz\r\n\r\n", {405}),
    ("bad_json_body",
     _post(b"/v1/knn", b"Content-Type: application/json\r\n"
           b"Content-Length: 5\r\n", b"{nope"), {400}),
    ("valid_health",
     b"GET /v1/healthz HTTP/1.1\r\nHost: fuzz\r\nConnection: close\r\n\r\n",
     {200}),
    ("valid_knn",
     _post(b"/v1/knn", b"Content-Type: application/json\r\n"
           b"Content-Length: %d\r\n" % len(_KNN_BODY), _KNN_BODY), {200}),
]


def _chunk(payload: bytes, rng: random.Random) -> list:
    """Split ``payload`` at seeded boundaries (1..6 pieces)."""
    if len(payload) < 2:
        return [payload]
    pieces = rng.randint(1, 6)
    cuts = sorted(rng.sample(range(1, len(payload)), min(pieces - 1,
                                                         len(payload) - 1)))
    out, start = [], 0
    for cut in cuts + [len(payload)]:
        out.append(payload[start:cut])
        start = cut
    return out


def _read_response(sock: socket.socket) -> tuple:
    """One response off the wire: ``(status, closed)``.

    Reads the head, honours ``Content-Length``, and reports whether the
    server closed the connection afterwards.  Raising ``socket.timeout``
    here is the suite's hang detector.
    """
    sock.settimeout(READ_TIMEOUT)
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            raise AssertionError(f"connection closed mid-head: {data!r}")
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            raise AssertionError("connection closed mid-body")
        rest += chunk
    # Short probe: a kept-alive connection simply has nothing more to say.
    sock.settimeout(0.05)
    try:
        closed = sock.recv(65536) == b""
    except socket.timeout:
        closed = False
    except ConnectionError:
        closed = True
    return status, closed


def _exchange(address: tuple, payload: bytes, rng: random.Random) -> tuple:
    """Send ``payload`` in seeded chunks; return ``(status, closed)``.

    Sending stops early if the server has already answered (it rejects
    oversized requests long before the last byte lands, and keeping on
    pushing would only race its close).  A reset while the response is in
    flight is retried once on a fresh connection with the same chunking —
    that race is the peer's kernel, not the server's framing.
    """
    sub_seed = rng.random()
    for attempt in (0, 1):
        chunks = _chunk(payload, random.Random(sub_seed))
        try:
            with socket.create_connection(address, timeout=READ_TIMEOUT) as sock:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                for i, chunk in enumerate(chunks):
                    readable, _, _ = select.select([sock], [], [], 0)
                    if readable:
                        break
                    try:
                        sock.sendall(chunk)
                    except (BrokenPipeError, ConnectionResetError):
                        break
                    if i + 1 < len(chunks):
                        time.sleep(0.002)
                return _read_response(sock)
        except (ConnectionResetError, AssertionError):
            if attempt:
                raise
    raise AssertionError("unreachable")


@pytest.fixture
def transport_pair(make_transport_server):
    """One live server per transport, fuzzed side by side."""
    return {name: make_transport_server(name)
            for name in ("threaded", "async")}


class TestFramingFuzz:
    @pytest.mark.parametrize("name,payload,expected",
                             CASES, ids=[c[0] for c in CASES])
    def test_case_parity_and_liveness(self, transport_pair, name, payload,
                                      expected):
        rng = random.Random(SEED ^ zlib.crc32(name.encode()))
        statuses = {}
        for transport, server in transport_pair.items():
            seen = set()
            for _ in range(3):  # three seeded chunkings of the same bytes
                status, _ = _exchange(server.server_address, payload, rng)
                seen.add(status)
            assert len(seen) == 1, \
                f"{transport} answered {seen} for {name}: chunking changed " \
                f"the status"
            statuses[transport] = seen.pop()
            assert statuses[transport] in expected, \
                f"{transport} answered {statuses[transport]} for {name}"
        assert statuses["threaded"] == statuses["async"], \
            f"transports disagree on {name}: {statuses}"

    @pytest.mark.parametrize("transport", ["threaded", "async"])
    def test_random_byte_storm_never_hangs(self, make_transport_server,
                                           transport):
        """200 seeded random-byte preambles: every one answers or closes."""
        server = make_transport_server(transport)
        rng = random.Random(SEED)
        for trial in range(200):
            blob = bytes(rng.randrange(256) for _ in range(rng.randint(1, 64)))
            payload = blob + b"\r\n\r\n"
            try:
                status, _ = _exchange(server.server_address, payload,
                                      random.Random(trial))
            except AssertionError:
                continue  # a clean close with no response is acceptable here
            assert 200 <= status < 600
        # The listener survived the storm.
        with ServerClient(server.url) as client:
            assert client.health()["status"] == "ok"

    @pytest.mark.parametrize("transport", ["threaded", "async"])
    def test_early_close_is_dropped_silently(self, make_transport_server,
                                             transport):
        """A peer vanishing mid-request must not wedge the listener."""
        server = make_transport_server(transport)
        for partial in (b"", b"GET /v1/he", b"GET /v1/healthz HTTP/1.1\r\nHo",
                        _post(b"/v1/knn",
                              b"Content-Type: application/json\r\n"
                              b"Content-Length: 100\r\n", b'{"tri')):
            with socket.create_connection(server.server_address,
                                          timeout=READ_TIMEOUT) as sock:
                if partial:
                    sock.sendall(partial)
                time.sleep(0.01)
        with ServerClient(server.url) as client:
            assert client.health()["status"] == "ok"

    @pytest.mark.parametrize("transport", ["threaded", "async"])
    def test_pipelined_requests_are_rejected(self, make_transport_server,
                                             transport):
        """Two requests in one write: a 400 rejection, or — when the
        server dispatched the first before the second arrived — two
        ordinary 200s.  Never anything in between, and never a hang."""
        server = make_transport_server(transport)
        request = b"GET /v1/healthz HTTP/1.1\r\nHost: fuzz\r\n\r\n"
        rejected = served = 0
        for _ in range(10):
            with socket.create_connection(server.server_address,
                                          timeout=READ_TIMEOUT) as sock:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                sock.sendall(request + request)
                status, closed = _read_response(sock)
                if status == 400:
                    assert closed, "a pipelining rejection must close"
                    rejected += 1
                else:
                    assert status == 200
                    status, _ = _read_response(sock)
                    assert status == 200
                    served += 1
        assert rejected + served == 10
        with ServerClient(server.url) as client:
            assert client.health()["status"] == "ok"
