"""IngestingIndex semantics: visibility, epochs, provenance, engine wiring."""

import pytest

from ingest_corpus import INSERT_TRIPLES, canonical
from repro.core import SemTreeIndex
from repro.errors import IndexError_
from repro.ingest import IngestingIndex
from repro.service import QueryEngine, QuerySpec


@pytest.fixture
def ingesting(make_base, tmp_path):
    with IngestingIndex(make_base(), tmp_path / "wal.jsonl",
                        compaction_threshold=4) as index:
        yield index


class TestConstruction:
    def test_requires_a_built_base(self, distance, tmp_path):
        with pytest.raises(IndexError_, match="built base"):
            IngestingIndex(SemTreeIndex(distance), tmp_path / "wal.jsonl")

    def test_rejects_nonpositive_threshold(self, make_base, tmp_path):
        with pytest.raises(IndexError_, match="compaction_threshold"):
            IngestingIndex(make_base(), tmp_path / "wal.jsonl", compaction_threshold=0)


class TestVisibility:
    def test_inserts_are_immediately_queryable(self, ingesting):
        triple = INSERT_TRIPLES[2]
        before = ingesting.k_nearest(triple, 1)
        assert before[0].triple != triple
        ingesting.insert(triple)
        after = ingesting.k_nearest(triple, 1)
        assert after[0].triple == triple
        assert after[0].distance == pytest.approx(0.0, abs=1e-9)

    def test_len_spans_tree_and_delta(self, ingesting):
        tree_points = len(ingesting.base)
        ingesting.insert(INSERT_TRIPLES[0])
        assert len(ingesting) == tree_points + 1
        assert len(ingesting.delta) == 1

    def test_provenance_is_dressed_onto_matches(self, ingesting):
        triple = INSERT_TRIPLES[3]
        ingesting.insert(triple, document_id="doc-42")
        (match,) = ingesting.k_nearest(triple, 1)
        assert match.triple == triple
        assert "doc-42" in match.documents


class TestEpochs:
    def test_inserts_do_not_move_the_generation(self, ingesting):
        generation = ingesting.generation
        for triple in INSERT_TRIPLES[:3]:
            ingesting.insert(triple)
        assert ingesting.generation == generation

    def test_compaction_bumps_the_generation_exactly_once(self, ingesting):
        generation = ingesting.generation
        for triple in INSERT_TRIPLES[:3]:
            ingesting.insert(triple)
        assert ingesting.compact() == 3
        assert ingesting.generation == generation + 1
        assert len(ingesting.delta) == 0

    def test_empty_compaction_is_a_no_op(self, ingesting):
        generation = ingesting.generation
        assert ingesting.compact() == 0
        assert ingesting.generation == generation

    def test_compaction_preserves_answers(self, ingesting):
        for triple in INSERT_TRIPLES[:3]:
            ingesting.insert(triple)
        query = INSERT_TRIPLES[1]
        before_knn = canonical(ingesting.k_nearest(query, 4))
        before_range = canonical(ingesting.range_query(query, 0.3))
        ingesting.compact()
        assert canonical(ingesting.k_nearest(query, 4)) == before_knn
        assert canonical(ingesting.range_query(query, 0.3)) == before_range


class TestEngineWiring:
    def test_cache_entries_survive_inserts_and_stay_fresh(self, ingesting):
        """The tentpole behaviour: a cached answer is overlaid with the live
        delta instead of being invalidated per insert."""
        query = INSERT_TRIPLES[2]
        with QueryEngine(ingesting, workers=2) as engine:
            cold = engine.execute(QuerySpec.k_nearest(query, 2))
            assert not cold.cached
            warm = engine.execute(QuerySpec.k_nearest(query, 2))
            assert warm.cached

            ingesting.insert(query)

            fresh = engine.execute(QuerySpec.k_nearest(query, 2))
            # still a cache hit — and still the *correct*, insert-aware answer
            assert fresh.cached
            assert fresh.matches[0].triple == query
            assert fresh.matches[0].distance == pytest.approx(0.0, abs=1e-9)
            assert engine.cache.stats.invalidations == 0

    def test_compaction_invalidates_at_compaction_granularity(self, ingesting):
        query = INSERT_TRIPLES[2]
        with QueryEngine(ingesting, workers=2) as engine:
            engine.execute(QuerySpec.k_nearest(query, 2))
            for triple in INSERT_TRIPLES[:3]:
                ingesting.insert(triple)
            ingesting.compact()
            refreshed = engine.execute(QuerySpec.k_nearest(query, 2))
            assert not refreshed.cached
            assert engine.cache.stats.invalidations >= 1

    def test_batch_results_equal_sequential_baseline_mid_stream(self, ingesting):
        for triple in INSERT_TRIPLES[:5]:
            ingesting.insert(triple)
        specs = [QuerySpec.k_nearest(INSERT_TRIPLES[1], 3),
                 QuerySpec.range_query(INSERT_TRIPLES[4], 0.3),
                 QuerySpec.k_nearest(INSERT_TRIPLES[1], 3)]
        with QueryEngine(ingesting, workers=2) as engine:
            batch = engine.execute_batch(specs)
            sequential = engine.execute_sequential(specs)
        for concurrent, baseline in zip(batch, sequential):
            assert concurrent.matches == baseline.matches


class TestStatistics:
    def test_statistics_report_the_write_path(self, ingesting):
        for triple in INSERT_TRIPLES[:5]:
            ingesting.insert(triple)
        ingesting.compact()
        stats = ingesting.statistics()
        assert stats["inserts"] == 5
        assert stats["compactions"] == 1
        assert stats["points_compacted"] == 5
        assert stats["delta_points"] == 0
        assert stats["wal_records"] == 5
        assert stats["applied_seq"] == 5
        assert stats["ingest_qps"] > 0
        assert "compaction_ms" in stats
