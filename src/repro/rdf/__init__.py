"""RDF substrate: terms, triples, namespaces, Turtle-like parsing, stores, documents."""

from repro.rdf.document import Document, DocumentCollection
from repro.rdf.namespace import DEFAULT_NAMESPACE, NamespaceRegistry
from repro.rdf.store import TripleStore
from repro.rdf.terms import Concept, Literal, Term, Variable, term_from_text
from repro.rdf.triple import Triple, TriplePattern
from repro.rdf.turtle import parse_term, parse_turtle, serialise_term, serialise_turtle

__all__ = [
    "Concept",
    "Literal",
    "Variable",
    "Term",
    "term_from_text",
    "Triple",
    "TriplePattern",
    "NamespaceRegistry",
    "DEFAULT_NAMESPACE",
    "TripleStore",
    "Document",
    "DocumentCollection",
    "parse_turtle",
    "parse_term",
    "serialise_turtle",
    "serialise_term",
]
