"""A stdlib sampling profiler over ``sys._current_frames()``.

:class:`SamplingProfiler` runs one daemon thread that wakes ``hz`` times a
second and records every other thread's Python stack as a root-first tuple
of ``module.function`` labels.  Costs are paid *only while sampling*: a
stopped (or never-started) profiler is a handful of idle objects, and the
serving threads themselves are never instrumented — the sampler reads
their frames from the interpreter, so the hot path runs unmodified.  That
is what lets a production server keep ``--profile`` available without
measurable steady-state overhead.

Two renderings, both text-tool friendly:

* :meth:`SamplingProfiler.collapsed` — the collapsed-stack format
  (``frame;frame;frame count`` per line) that flamegraph tooling consumes
  directly;
* :meth:`SamplingProfiler.top` — per-function self/cumulative sample
  counts, the ``top(1)`` view of where time goes.

:func:`profile_endpoint` adapts either an on-demand burst (sample for
``seconds``, then render) or a continuously running profiler to the
``GET /v1/debug/profile`` route every app exposes (see
``docs/observability.md``).
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import QueryError

__all__ = [
    "DEFAULT_HZ",
    "MAX_PROFILE_SECONDS",
    "SamplingProfiler",
    "profile_endpoint",
]

#: Default sampling frequency.  A prime, so the sampler does not phase-lock
#: with timers and periodic work that run at round frequencies.
DEFAULT_HZ = 97

#: Upper bounds a ``/v1/debug/profile`` request can ask for — an on-demand
#: profile blocks one handler thread for its whole duration.
MAX_PROFILE_SECONDS = 30.0
MAX_HZ = 997

#: Deepest stack recorded; frames below the cut are dropped (root side).
_MAX_DEPTH = 64

#: Most distinct stacks kept; pathological churn collapses into one bucket.
_MAX_STACKS = 10_000
_OVERFLOW_STACK = ("(stacks-truncated)",)


def _frame_label(frame) -> str:
    """``module.function`` for one frame (the collapsed-format atom)."""
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{frame.f_code.co_name}"


def _walk_stack(frame) -> Tuple[str, ...]:
    """The stack of ``frame`` as a root-first label tuple, depth-capped."""
    labels: List[str] = []
    while frame is not None and len(labels) < _MAX_DEPTH:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


class SamplingProfiler:
    """Sample every thread's Python stack from a background thread.

    Parameters
    ----------
    hz:
        Target samples per second (clamped to ``1..MAX_HZ``).  Each tick
        costs one ``sys._current_frames()`` call plus a stack walk per
        live thread, so even ``DEFAULT_HZ`` stays well under 1% of one
        core on a typical serving process.
    """

    def __init__(self, hz: int = DEFAULT_HZ):
        self.hz = max(1, min(int(hz), MAX_HZ))
        self._interval = 1.0 / self.hz
        self._samples: Counter = Counter()
        self._total = 0
        self._started_at: Optional[float] = None
        self._wall_seconds = 0.0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the sampler thread is currently collecting."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Start sampling (idempotent while running)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop.clear()
            self._started_at = time.perf_counter()
            self._thread = threading.Thread(
                target=self._sample_loop, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling; the collected samples remain readable."""
        with self._lock:
            thread = self._thread
            if thread is None:
                return self
            self._stop.set()
        thread.join(timeout=5.0)
        with self._lock:
            if self._started_at is not None:
                self._wall_seconds += time.perf_counter() - self._started_at
                self._started_at = None
            self._thread = None
        return self

    def _sample_loop(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self._interval):
            self._sample_once(own_id)

    def _sample_once(self, own_id: int) -> None:
        frames = sys._current_frames()
        stacks = [
            _walk_stack(frame)
            for thread_id, frame in frames.items()
            if thread_id != own_id
        ]
        del frames  # drop the frame references before sleeping again
        with self._lock:
            for stack in stacks:
                if stack not in self._samples and len(self._samples) >= _MAX_STACKS:
                    stack = _OVERFLOW_STACK
                self._samples[stack] += 1
                self._total += 1

    # -- reading ------------------------------------------------------------------------

    @property
    def total_samples(self) -> int:
        """Thread-stack samples recorded so far."""
        with self._lock:
            return self._total

    def wall_seconds(self) -> float:
        """Wall time spent sampling (running time counts up live)."""
        with self._lock:
            elapsed = self._wall_seconds
            if self._started_at is not None:
                elapsed += time.perf_counter() - self._started_at
            return elapsed

    def snapshot(self) -> Dict[Tuple[str, ...], int]:
        """The raw ``{stack: samples}`` counter (a copy)."""
        with self._lock:
            return dict(self._samples)

    def collapsed(self) -> str:
        """The samples in collapsed-stack format, one ``frames count`` line each.

        Frames are root-first and ``;``-joined — exactly what
        ``flamegraph.pl`` / speedscope / inferno consume.
        """
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.snapshot().items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def top(self, limit: int = 30) -> List[Dict[str, Any]]:
        """Per-function sample counts, hottest first.

        ``self`` counts samples where the function was the innermost frame
        (it was *executing*); ``cumulative`` counts samples where it was
        anywhere on the stack (it was *on the path*).
        """
        self_counts: Counter = Counter()
        cumulative: Counter = Counter()
        total = 0
        for stack, count in self.snapshot().items():
            total += count
            self_counts[stack[-1]] += count
            for label in set(stack):
                cumulative[label] += count
        rows = [
            {
                "function": label,
                "self": count,
                "self_fraction": count / total if total else 0.0,
                "cumulative": cumulative[label],
                "cumulative_fraction": cumulative[label] / total if total else 0.0,
            }
            for label, count in self_counts.most_common(limit)
        ]
        return rows


def _float_param(params: Dict[str, str], name: str, default: float,
                 upper: float) -> float:
    raw = params.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise QueryError(f"{name} must be a number, got {raw!r}") from None
    if value <= 0:
        raise QueryError(f"{name} must be positive, got {value}")
    return min(value, upper)


def profile_endpoint(params: Dict[str, str],
                     continuous: Optional[SamplingProfiler] = None):
    """Serve one ``GET /v1/debug/profile`` request.

    With a ``continuous`` profiler running and no explicit ``seconds``,
    the accumulated samples are rendered without interrupting collection.
    Otherwise a fresh profiler samples for ``seconds`` (default 1, capped
    at :data:`MAX_PROFILE_SECONDS`) at ``hz`` — blocking this handler
    thread, which is the point: the *other* threads are the ones profiled.

    Returns a JSON-native dictionary (``format=top``, the default) or a
    ``(content_type, text)`` pair (``format=collapsed``) — the two shapes
    the transport's parameterised GET dispatch understands.
    """
    fmt = params.get("format", "top")
    if fmt not in ("top", "collapsed"):
        raise QueryError(
            f"unknown profile format {fmt!r}; expected 'top' or 'collapsed'"
        )
    hz = int(_float_param(params, "hz", DEFAULT_HZ, MAX_HZ))
    if continuous is not None and continuous.running and "seconds" not in params:
        profiler = continuous
        source = "continuous"
    else:
        seconds = _float_param(params, "seconds", 1.0, MAX_PROFILE_SECONDS)
        profiler = SamplingProfiler(hz=hz).start()
        time.sleep(seconds)
        profiler.stop()
        source = "on_demand"
    if fmt == "collapsed":
        return ("text/plain; charset=utf-8", profiler.collapsed())
    limit = int(_float_param(params, "limit", 30, 1000))
    return {
        "source": source,
        "hz": profiler.hz,
        "wall_seconds": profiler.wall_seconds(),
        "samples": profiler.total_samples,
        "functions": profiler.top(limit),
    }
