"""Tests for the controlled-English tokenizer."""

from repro.nlp import Token, normalise_identifier, split_sentences, tokenize


class TestTokenize:
    def test_words_and_punctuation(self):
        tokens = tokenize("The component OBSW001 shall accept the command start-up.")
        assert [t.text for t in tokens][:3] == ["The", "component", "OBSW001"]
        assert tokens[-1].text == "."
        assert tokens[-1].is_punctuation

    def test_hyphenated_identifiers_stay_together(self):
        tokens = tokenize("start-up self-test")
        assert [t.text for t in tokens] == ["start-up", "self-test"]

    def test_normal_form_is_lower_case(self):
        assert Token("Shall").normal == "shall"

    def test_empty_string(self):
        assert tokenize("") == []

    def test_numbers_and_underscores(self):
        assert [t.text for t in tokenize("mode_3 42")] == ["mode_3", "42"]


class TestSplitSentences:
    def test_splits_on_terminal_punctuation(self):
        text = "First sentence. Second sentence! Third sentence?"
        assert len(split_sentences(text)) == 3

    def test_blank_fragments_dropped(self):
        assert split_sentences("  One sentence.   ") == ["One sentence."]

    def test_single_sentence_without_period(self):
        assert split_sentences("no terminal punctuation") == ["no terminal punctuation"]

    def test_empty_text(self):
        assert split_sentences("   ") == []


class TestNormaliseIdentifier:
    def test_strips_punctuation_and_collapses_whitespace(self):
        assert normalise_identifier("  power   amplifier. ") == "power amplifier"

    def test_preserves_hyphens(self):
        assert normalise_identifier("pre-launch phase") == "pre-launch phase"
