"""The threaded HTTP transport: one handler thread per connection.

One :class:`SemTreeServer` binds one :class:`~repro.server.app.ServerApp`
to a host/port.  It is built on :class:`http.server.ThreadingHTTPServer` —
one thread per connection, which composes with the engine's worker pool and
the ingest layer's reader/writer locking (inserts and queries already
interleave safely in-process; HTTP threads are just more callers).

All framing and request handling is shared with the event-loop transport
(:mod:`repro.server.async_http`) through :mod:`repro.server.protocol`: the
handler below only moves bytes — a blocking ``recv`` loop feeding the
incremental :class:`~repro.server.protocol.RequestParser`, a blocking
``sendall`` for the :class:`~repro.server.protocol.WireResponse` the shared
:class:`~repro.server.protocol.Dispatcher` produced.  Every status, error
body, header and close decision comes from the shared layer, so the two
transports cannot drift apart.

**Drain semantics** (pinned by ``tests/server/test_shutdown_drain.py``):
:meth:`SemTreeServer.close` stops accepting, force-closes *idle*
keep-alive connections, lets every *in-flight* request run to completion
and write its response, and only then tears the app down (checkpointing
the WAL position).  A SIGTERM mid-request therefore never loses an
accepted request: the idle→busy flip happens under the server's handler
lock the moment a request's first bytes arrive, and the shutdown sweep
shuts idle sockets under the same lock — a request either wins the race
(marked busy, drained) or loses it (socket shut before the app ever sees
it); it is never aborted mid-execution.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from http.server import ThreadingHTTPServer
from typing import Dict, Optional

from repro.faults import FaultPlan
from repro.obs import export as obs_export
from repro.server.app import ServerApp
from repro.server.protocol import (MAX_BODY_BYTES, Dispatcher, RequestParser,
                                   WireResponse, shut_socket)

__all__ = ["SemTreeServer", "MAX_BODY_BYTES"]

#: Bytes pulled per blocking socket read.
_RECV_SIZE = 64 * 1024


class _Handler(socketserver.StreamRequestHandler):
    """Moves one connection's bytes through the shared protocol layer."""

    #: Socket timeout per blocking read, seconds.  Bounds how long a
    #: handler thread can sit waiting (a client that sends headers and
    #: then stalls mid-body, or an idle keep-alive connection) — without
    #: it, each such socket would pin a handler thread forever and an idle
    #: keep-alive client would block the shutdown join indefinitely.  A
    #: timeout closes the connection silently, exactly as before.
    timeout = 30.0

    #: Disable Nagle's algorithm on accepted sockets.  The request/response
    #: exchange here is small writes in both directions; Nagle batching
    #: interacts with the peer's delayed ACKs into a ~40 ms stall per
    #: exchange, which was the bulk of the 44 ms per-request floor the
    #: benchmarks measured (ROADMAP Open item 1, before PR 6).
    disable_nagle_algorithm = True

    # -- connection lifecycle -----------------------------------------------------------
    # Keep-alive clients hold their connection open between requests; the
    # handler thread then blocks awaiting the next request's bytes.  So
    # that shutdown does not have to sit out the full socket timeout per
    # idle connection, each handler registers itself with the server and
    # flags when it is busy serving a request: close() force-closes the
    # idle ones (unblocking their reads immediately) and lets the busy
    # ones drain.

    _busy = False

    def handle(self) -> None:
        server: SemTreeServer = self.server  # type: ignore[assignment]
        server.track_handler(self)
        try:
            while True:
                self._busy = False
                keep_alive = self._serve_one(server)
                if not keep_alive or server.draining:
                    break
        finally:
            self._busy = False
            server.untrack_handler(self)

    def _serve_one(self, server: "SemTreeServer") -> bool:
        """Frame and answer one request; True keeps the connection open."""
        dispatcher = server.dispatcher
        parser = RequestParser()
        client = "%s:%s" % self.client_address[:2]
        early = False
        while True:
            if parser.state == "paused":
                assert parser.request is not None
                if dispatcher.needs_body(parser.request):
                    parser.begin_body()
                    continue
                early = True
                break
            if parser.state in ("complete", "error"):
                break
            try:
                data = self.connection.recv(_RECV_SIZE)
            except socket.timeout:
                # A stalled or idle peer: close silently (no bytes of a
                # response could be trusted to arrive anyway).
                return False
            except OSError:
                return False
            if not data:
                if parser.started:
                    self._write(dispatcher.truncated_response(client))
                return False
            if not self._busy:
                # The idle→busy flip races the shutdown sweep; both sides
                # take the handlers lock, so the request is either drained
                # or never dispatched (see _close_idle_connections).
                with server._handlers_lock:
                    self._busy = True
            parser.feed(data)
        if parser.state == "error":
            assert parser.error is not None
            return self._write(dispatcher.framing_response(parser.error, client))
        request = parser.request
        assert request is not None
        if parser.remainder and not (early and request.body_indicated):
            # Bytes beyond the framed request arrived before we answered:
            # the client is pipelining, which this server rejects.  (An
            # early-dispatched request with a declared body is different —
            # the leftover bytes are its unread body, and the dispatcher
            # already forces those responses to close the connection.)
            return self._write(dispatcher.pipelining_response(client))
        response = dispatcher.dispatch(request, client)
        if response.reset:
            shut_socket(self.connection)
            return False
        return self._write(response)

    def _write(self, response: WireResponse) -> bool:
        """Send one response; True when the connection may be reused."""
        try:
            if response.drip is not None and response.body:
                # A slow-drip fault: the body leaves in small chunks with
                # the fault's latency spread across the gaps — a
                # pathologically slow peer, as seen by the client's reads.
                self.connection.sendall(response.encode_head())
                for pause, chunk in response.drip_chunks():
                    if pause:
                        time.sleep(pause)
                    self.connection.sendall(chunk)
            else:
                self.connection.sendall(response.encode())
        except OSError:
            return False
        return not response.close


class SemTreeServer(ThreadingHTTPServer):
    """The process-level front end: one app, one listening socket.

    Parameters
    ----------
    app:
        The app to expose: a full :class:`ServerApp`, a
        :class:`~repro.server.shard.ShardApp` (one partition's scan
        endpoints) or a :class:`~repro.coordinator.app.CoordinatorApp`.
        Any object exposing ``post_routes()`` / ``get_routes()`` /
        ``close(checkpoint=...)`` binds.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back from
        :attr:`bound_port` — this is what the tests and benchmarks do).
    quiet:
        Reserved for transport chatter (the structured access log on
        ``repro.access`` is always emitted; see :mod:`repro.obs.logging`).

    request_timeout:
        Per-read socket timeout in seconds (see ``_Handler.timeout``); it
        bounds stalled readers *and* how long shutdown can wait on an
        idle keep-alive connection.
    fault_plan:
        Optional fault-injection plan for chaos runs (defaults to whatever
        ``$REPRO_FAULTS`` carries, usually nothing); see :mod:`repro.faults`.

    Use :meth:`serve_background` for an in-process server (tests, examples,
    benchmarks) and ``serve_forever()`` on the main thread for a real
    deployment (:mod:`repro.server.__main__` does the latter, with signal
    handlers for graceful shutdown).

    Prefer constructing through :func:`repro.server.create_server`, which
    picks this transport or the event-loop one
    (:class:`~repro.server.async_http.AsyncSemTreeServer`) from the
    ``--transport`` flag / ``$REPRO_TRANSPORT``.
    """

    #: Transport name, as accepted by ``create_server``.
    transport = "threaded"

    # Handler threads must be non-daemon: ThreadingMixIn only *tracks*
    # non-daemon threads (socketserver._Threads.append skips daemon ones),
    # and close() relies on server_close() joining them so in-flight
    # requests drain before the app is torn down beneath them.
    daemon_threads = False

    def __init__(self, app: ServerApp, *, host: str = "127.0.0.1", port: int = 0,
                 quiet: bool = True, request_timeout: float = 30.0,
                 fault_plan: Optional[FaultPlan] = None):
        # Chaos runs poison subprocess servers through $REPRO_FAULTS; an
        # explicitly passed plan (tests) wins over the environment.
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        handler = type("_BoundHandler", (_Handler,), {
            "timeout": request_timeout,
        })
        super().__init__((host, port), handler)
        self.app = app
        self.quiet = quiet
        self.fault_plan = fault_plan
        self.dispatcher = Dispatcher(app, quiet=quiet, fault_plan=fault_plan,
                                     record_wire_bytes=self.record_wire_bytes)
        self._serve_thread: Optional[threading.Thread] = None
        self.draining = False
        self._handlers_lock = threading.Lock()
        self._live_handlers: set = set()
        self._wire_lock = threading.Lock()
        self._wire_bytes: Dict[str, int] = {"in": 0, "out": 0}
        registry = getattr(app, "registry", None)
        if registry is not None:
            obs_export.bind_wire_bytes(registry, self.wire_bytes)
            registry.gauge(
                "repro_open_connections",
                "Live HTTP connections held by the transport.",
            ).set_function(lambda: float(len(self._live_handlers)))

    # -- wire accounting (fed by the shared Dispatcher) ---------------------------------

    def record_wire_bytes(self, direction: str, count: int) -> None:
        with self._wire_lock:
            self._wire_bytes[direction] += count

    def wire_bytes(self) -> Dict[str, int]:
        """HTTP body bytes moved so far, keyed ``in`` / ``out``."""
        with self._wire_lock:
            return dict(self._wire_bytes)

    # -- connection tracking (see _Handler.handle) --------------------------------------

    def track_handler(self, handler: _Handler) -> None:
        with self._handlers_lock:
            self._live_handlers.add(handler)

    def untrack_handler(self, handler: _Handler) -> None:
        with self._handlers_lock:
            self._live_handlers.discard(handler)

    def _close_idle_connections(self) -> None:
        """Unblock handler threads parked on idle keep-alive connections.

        A handler that is mid-request (``_busy``) is left alone — it drains
        normally and closes its connection afterwards because ``draining``
        is set.  Idle handlers are blocked reading a request that may
        never come; shutting their socket read side makes that read return
        EOF immediately.  The whole sweep runs under the handlers lock, the
        same lock a handler takes to flip idle→busy when a request's first
        bytes arrive — so a request either wins the race (marked busy,
        drained) or loses it (socket shut before the app ever sees it); it
        is never aborted mid-execution.
        """
        with self._handlers_lock:
            for handler in self._live_handlers:
                if handler._busy:
                    continue
                try:
                    handler.connection.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass  # already closed by the client

    @property
    def bound_port(self) -> int:
        """The port actually bound (resolves ``port=0``)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host = self.server_address[0]
        return f"http://{host}:{self.bound_port}"

    # -- lifecycle ----------------------------------------------------------------------

    def serve_background(self) -> "SemTreeServer":
        """Serve on a daemon thread; returns once the socket is accepting."""
        if self._serve_thread is None or not self._serve_thread.is_alive():
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="semtree-http", daemon=True
            )
            self._serve_thread.start()
        return self

    def close(self, *, checkpoint: bool | None = None) -> Optional[int]:
        """Stop accepting, drain in-flight requests, shut the app down.

        The drain contract: every request whose first bytes arrived before
        the shutdown sweep completes fully — handler runs, response bytes
        written — before ``app.close(checkpoint=...)`` tears down the
        engine and checkpoints the WAL position.  Idle keep-alive
        connections (no request in flight) are force-closed immediately.

        Returns the checkpointed ``wal_seq`` (see :meth:`ServerApp.close`).
        """
        self.draining = True
        if self._serve_thread is not None:
            # shutdown() blocks until serve_forever() exits, so only call it
            # when the serve loop is actually running on our thread.
            self.shutdown()
            self._serve_thread.join()
            self._serve_thread = None
        # Idle keep-alive connections are force-closed (their handler
        # threads would otherwise block until the socket timeout); busy ones
        # drain.  server_close() then joins every handler thread (tracked
        # because daemon_threads is False), so accepted requests complete
        # fully before the app — engine, compactor, WAL — is torn down
        # beneath them.
        self._close_idle_connections()
        self.server_close()
        return self.app.close(checkpoint=checkpoint)

    def __enter__(self) -> "SemTreeServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
