"""Tests for the namespace registry."""

import pytest

from repro.errors import NamespaceError
from repro.rdf import DEFAULT_NAMESPACE, Concept, NamespaceRegistry


class TestBindings:
    def test_default_prefix_always_present(self):
        registry = NamespaceRegistry()
        assert registry.namespace_of("") == DEFAULT_NAMESPACE
        assert "" in registry

    def test_bind_and_lookup(self):
        registry = NamespaceRegistry()
        registry.bind("Fun", "http://example.org/functions")
        assert registry.namespace_of("Fun") == "http://example.org/functions"

    def test_constructor_bindings(self):
        registry = NamespaceRegistry({"A": "ns-a", "B": "ns-b"})
        assert registry.namespace_of("A") == "ns-a"
        assert len(registry) == 3  # A, B and the default prefix

    def test_rebinding_same_namespace_is_idempotent(self):
        registry = NamespaceRegistry({"A": "ns-a"})
        registry.bind("A", "ns-a")
        assert registry.namespace_of("A") == "ns-a"

    def test_conflicting_rebinding_rejected(self):
        registry = NamespaceRegistry({"A": "ns-a"})
        with pytest.raises(NamespaceError):
            registry.bind("A", "ns-other")

    def test_conflicting_rebinding_with_overwrite(self):
        registry = NamespaceRegistry({"A": "ns-a"})
        registry.bind("A", "ns-other", overwrite=True)
        assert registry.namespace_of("A") == "ns-other"

    def test_empty_namespace_rejected(self):
        with pytest.raises(NamespaceError):
            NamespaceRegistry().bind("A", "")

    def test_unknown_prefix_lookup_raises(self):
        with pytest.raises(NamespaceError):
            NamespaceRegistry().namespace_of("Nope")

    def test_unbind(self):
        registry = NamespaceRegistry({"A": "ns-a"})
        registry.unbind("A")
        assert "A" not in registry

    def test_unbind_default_prefix_rejected(self):
        with pytest.raises(NamespaceError):
            NamespaceRegistry().unbind("")

    def test_unbind_unknown_prefix_rejected(self):
        with pytest.raises(NamespaceError):
            NamespaceRegistry().unbind("A")


class TestExpansion:
    def test_expand_and_compact_roundtrip(self):
        registry = NamespaceRegistry({"Fun": "functions"})
        concept = Concept("accept_cmd", "Fun")
        expanded = registry.expand(concept)
        assert expanded == "functions/accept_cmd"
        assert registry.compact(expanded) == concept

    def test_expand_default_prefix(self):
        registry = NamespaceRegistry()
        assert registry.expand(Concept("OBSW001")) == f"{DEFAULT_NAMESPACE}/OBSW001"

    def test_compact_unknown_namespace(self):
        with pytest.raises(NamespaceError):
            NamespaceRegistry().compact("unknown/name")

    def test_compact_malformed_identifier(self):
        with pytest.raises(NamespaceError):
            NamespaceRegistry().compact("no-separator")

    def test_iteration_is_sorted(self):
        registry = NamespaceRegistry({"B": "ns-b", "A": "ns-a"})
        prefixes = [prefix for prefix, _ in registry]
        assert prefixes == sorted(prefixes)

    def test_as_dict_is_a_copy(self):
        registry = NamespaceRegistry({"A": "ns-a"})
        snapshot = registry.as_dict()
        snapshot["A"] = "tampered"
        assert registry.namespace_of("A") == "ns-a"
