"""Live ingestion above :class:`~repro.core.semtree.SemTreeIndex`.

The LSM-style write path that lets the index absorb an insert stream while
serving reads, instead of quiescing queries between mutation batches:

* :mod:`repro.ingest.wal` — append-only write-ahead log (JSON lines,
  replay-on-open, torn-tail tolerance);
* :mod:`repro.ingest.delta` — the in-memory linear-scan segment holding
  freshly inserted, FastMap-projected points, immediately queryable;
* :mod:`repro.ingest.ingesting` — :class:`IngestingIndex`, merging tree ∪
  delta reads with exact semantics under an epoch/read-write-lock scheme,
  plus checkpoint/recover;
* :mod:`repro.ingest.compactor` — threshold-driven folding of the delta
  into the distributed tree, on the caller's thread or a background one;
* :mod:`repro.ingest.rwlock` — the writer-preferring readers–writer lock.

See ``docs/ingest.md`` for the subsystem guide.
"""

from repro.ingest.compactor import BackgroundCompactor, Compactor
from repro.ingest.delta import DeltaIndex
from repro.ingest.ingesting import DEFAULT_COMPACTION_THRESHOLD, IngestingIndex
from repro.ingest.rwlock import ReadWriteLock
from repro.ingest.wal import WalRecord, WriteAheadLog

__all__ = [
    "IngestingIndex",
    "DEFAULT_COMPACTION_THRESHOLD",
    "WriteAheadLog",
    "WalRecord",
    "DeltaIndex",
    "Compactor",
    "BackgroundCompactor",
    "ReadWriteLock",
]
