"""``python -m repro.server`` — boot a SemTree server from durable state.

Boot sequence (full server, the default):

1. the checkpoint snapshot is parsed once; the semantic distance is rebuilt
   from its persisted vocabulary hints (or harvested from the stored
   triples for older snapshots) — :func:`~repro.server.bootstrap.recover_index`;
2. the tree is restored from the snapshot and the WAL records after its
   ``wal_seq`` are replayed into the delta;
3. a :class:`~repro.server.app.ServerApp` (query engine + background
   compactor) is bound to the HTTP transport chosen by ``--transport``
   (the :mod:`selectors` event loop by default, or thread-per-connection
   with ``--transport threaded``);
4. on SIGINT/SIGTERM the server stops accepting, drains in-flight queries,
   folds the delta, writes a checkpoint back to ``--snapshot`` and
   truncates the WAL (disable with ``--no-checkpoint-on-exit``).

Shard mode (``--shard P3``) boots the same process as a *partition shard*
instead: only partition ``P3``'s subtree is loaded from the snapshot and
the server exposes the raw scan endpoints ``/v1/shard/knn`` /
``/v1/shard/range`` a :mod:`repro.coordinator` front end fans out to.  A
shard holds no delta, so boot refuses a WAL whose tail is newer than the
snapshot — checkpoint first, then launch the shards.

Examples::

    python -m repro.server --snapshot snap.json --wal wal.jsonl --port 8080
    python -m repro.server --snapshot snap.json --shard P1 --port 9001

See ``docs/server.md`` for the endpoint reference and ``docs/cluster.md``
for the sharded deployment topology.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import Optional, Sequence, Tuple, Union

from repro.errors import IndexError_
from repro.faults import FaultPlan
from repro.obs.logging import configure_logging
from repro.obs.profile import SamplingProfiler
from repro.server.app import ServerApp
from repro.server.async_http import AsyncSemTreeServer
from repro.server.bootstrap import load_shard, recover_index, wal_tail_seq
from repro.server.factory import TRANSPORTS, create_server
from repro.server.http import SemTreeServer
from repro.server.shard import ShardApp

__all__ = ["build_parser", "build_server", "main"]

ServerLike = Union[SemTreeServer, AsyncSemTreeServer]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a SemTree index over HTTP, recovering from a "
                    "checkpoint snapshot + write-ahead-log tail.",
    )
    parser.add_argument("--snapshot", required=True,
                        help="checkpoint snapshot to boot from (and to write the "
                             "shutdown checkpoint back to)")
    parser.add_argument("--wal", default=None,
                        help="write-ahead log; its tail (records after the snapshot's "
                             "wal_seq) is replayed on boot, and live inserts append to "
                             "it (required unless --shard)")
    parser.add_argument("--shard", default=None, metavar="PARTITION_ID",
                        help="serve one partition of the snapshot as a read-only "
                             "shard (/v1/shard/knn, /v1/shard/range) instead of the "
                             "full query API")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8080,
                        help="bind port (0 picks an ephemeral port)")
    parser.add_argument("--transport", choices=TRANSPORTS, default=None,
                        help="HTTP front end: the selectors event loop "
                             "('async', the default) or thread-per-connection "
                             "('threaded'); default honours $REPRO_TRANSPORT")
    parser.add_argument("--idle-timeout", type=float, default=None,
                        help="async transport: drop keep-alive connections "
                             "idle this many seconds (default: the request "
                             "timeout)")
    parser.add_argument("--transport-workers", type=int, default=8,
                        help="async transport: dispatch worker threads")
    parser.add_argument("--no-wire-cache", action="store_true",
                        help="async transport: disable the loop-side "
                             "response byte cache (full servers only; shards "
                             "and coordinators never cache wire bytes)")
    parser.add_argument("--workers", type=int, default=4,
                        help="query-engine worker threads")
    parser.add_argument("--cache-capacity", type=int, default=1024,
                        help="result-cache entries")
    parser.add_argument("--cache-ttl", type=float, default=None,
                        help="result-cache TTL in seconds (default: no expiry)")
    parser.add_argument("--cache-segmented", action="store_true",
                        help="use SLRU (probationary/protected) cache admission")
    parser.add_argument("--default-deadline", type=float, default=None,
                        help="per-query deadline in seconds applied when a request "
                             "carries none (default: wait for completion)")
    parser.add_argument("--compaction-threshold", type=int, default=256,
                        help="delta size that triggers a background compaction")
    parser.add_argument("--no-background-compaction", action="store_true",
                        help="disable the background compactor (folds then only "
                             "happen at the shutdown checkpoint)")
    parser.add_argument("--no-checkpoint-on-exit", action="store_true",
                        help="skip the shutdown checkpoint (the WAL alone stays "
                             "the recovery source)")
    parser.add_argument("--actors", default="",
                        help="comma-separated extra actor names future inserts may "
                             "mention (stored actors are read from the snapshot)")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        help="log executed queries slower than this many "
                             "milliseconds as structured JSON on repro.slow_query "
                             "(default: REPRO_SLOW_QUERY_MS, unset = disabled)")
    parser.add_argument("--profile", action="store_true",
                        help="run a continuous sampling profiler; read it back "
                             "at GET /v1/debug/profile")
    parser.add_argument("--max-queue-depth", type=int, default=None,
                        help="admission control: reject queries with 503 + "
                             "Retry-After once this many are outstanding in the "
                             "engine (default: unbounded)")
    parser.add_argument("--client-rate", type=float, default=None,
                        help="admission control: per-client (X-Client-Id header) "
                             "sustained queries/second (default: unlimited)")
    parser.add_argument("--client-burst", type=int, default=10,
                        help="per-client token-bucket burst size (with "
                             "--client-rate)")
    parser.add_argument("--faults", default=None,
                        help="fault-injection plan: JSON text or a path to a "
                             "JSON file (default: $REPRO_FAULTS; testing only)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-request log lines")
    return parser


def build_server(argv: Optional[Sequence[str]] = None) -> Tuple["ServerLike", argparse.Namespace]:
    """Parse arguments, recover the index (or load the shard), return a bound server."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.shard is not None:
        server = _build_shard_server(args)
        return server, args
    if args.wal is None:
        parser.error("--wal is required (unless booting a --shard)")
    extra_actors = [name.strip() for name in args.actors.split(",") if name.strip()]
    index = recover_index(
        args.snapshot, args.wal, extra_actors=extra_actors,
        compaction_threshold=args.compaction_threshold,
    )
    app = ServerApp(
        index,
        workers=args.workers,
        cache_capacity=args.cache_capacity,
        cache_ttl=args.cache_ttl,
        cache_segmented=args.cache_segmented,
        default_deadline=args.default_deadline,
        checkpoint_path=None if args.no_checkpoint_on_exit else args.snapshot,
        background_compaction=not args.no_background_compaction,
        slow_query_ms=args.slow_query_ms,
        profiler=SamplingProfiler().start() if args.profile else None,
        max_queue_depth=args.max_queue_depth,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
    )
    server = create_server(
        app, transport=args.transport, host=args.host, port=args.port,
        quiet=args.quiet, fault_plan=_fault_plan(args),
        idle_timeout=args.idle_timeout,
        transport_workers=args.transport_workers,
        wire_cache=not args.no_wire_cache,
    )
    return server, args


def _fault_plan(args: argparse.Namespace) -> Optional[FaultPlan]:
    """The ``--faults`` plan when given, else whatever $REPRO_FAULTS says."""
    if getattr(args, "faults", None) is not None:
        return FaultPlan.from_source(args.faults)
    return FaultPlan.from_env()


def _build_shard_server(args: argparse.Namespace) -> ServerLike:
    """Boot the process as a read-only partition shard."""
    tail = wal_tail_seq(args.wal)
    boot = load_shard(args.snapshot, args.shard)
    if tail > boot.wal_seq:
        raise IndexError_(
            f"the WAL tail reaches seq {tail} but the snapshot only covers "
            f"seq {boot.wal_seq}: a shard has no delta to replay into — "
            "checkpoint the full server first, then boot the shards"
        )
    app = ShardApp(
        boot, slow_query_ms=args.slow_query_ms,
        profiler=SamplingProfiler().start() if args.profile else None,
    )
    return create_server(
        app, transport=args.transport, host=args.host, port=args.port,
        quiet=args.quiet, fault_plan=_fault_plan(args),
        idle_timeout=args.idle_timeout,
        transport_workers=args.transport_workers,
        # A shard's scan results depend only on its immutable boot snapshot,
        # but ShardApp exposes no cacheable routes anyway — keep it off.
        wire_cache=False,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    server, args = build_server(argv)
    # Structured JSON logs on stderr: access lines, slow queries, warnings.
    # --quiet keeps warnings only (matching the old silent default).
    # Configured here, not in build_server, so embedding the builder (tests,
    # notebooks) never rewires the process's logging.
    configure_logging(level=30 if args.quiet else 20)
    if args.shard is not None:
        app = server.app
        print(f"shard {app.partition_id}: {app.boot.points} points "
              f"(generation {app.boot.generation}, "
              f"snapshot partitions {', '.join(app.boot.partition_ids)})", flush=True)
        return _serve_until_signalled(server, args)
    index = server.app.index
    replayed = index.statistics()["replayed"]
    print(f"recovered {len(index)} points "
          f"(generation {index.generation}, applied_seq {index.applied_seq}, "
          f"replayed {replayed} WAL records)", flush=True)
    return _serve_until_signalled(server, args)


def _serve_until_signalled(server: ServerLike, args: argparse.Namespace) -> int:
    stop = threading.Event()

    def request_stop(signum, frame) -> None:
        stop.set()

    previous = {
        signal.SIGINT: signal.signal(signal.SIGINT, request_stop),
        signal.SIGTERM: signal.signal(signal.SIGTERM, request_stop),
    }
    try:
        server.serve_background()
        print(f"listening on {server.url}", flush=True)
        stop.wait()
        print("shutting down ...", flush=True)
        wal_seq = server.close()
        if wal_seq is not None:
            print(f"checkpointed through wal_seq {wal_seq} to {args.snapshot}",
                  flush=True)
        elif getattr(args, "shard", None) is not None:
            print("shard stopped (read-only: nothing to checkpoint)", flush=True)
        elif getattr(args, "wal", None) is None:
            # The coordinator CLI reuses this loop; it owns no durable state.
            print("coordinator stopped (read-only: nothing to checkpoint)",
                  flush=True)
        else:
            print("stopped without a checkpoint (WAL remains the recovery source)",
                  flush=True)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0


if __name__ == "__main__":
    sys.exit(main())
