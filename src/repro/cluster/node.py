"""Compute nodes of the simulated cluster.

The paper's condition for spilling a partition "may depend on the percentage
of the available storage resources of each partition or statically fixed".
A :class:`ComputeNode` therefore has a storage capacity (measured in points)
and tracks how much of it is used by the partitions it hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.errors import ClusterError

__all__ = ["ComputeNode"]


@dataclass
class ComputeNode:
    """A simulated compute node: identity, storage capacity, hosted partitions.

    Parameters
    ----------
    node_id:
        Unique identifier within the cluster.
    storage_capacity:
        Maximum number of points this node can store across all the
        partitions it hosts.  ``None`` means unlimited.
    processing_cost:
        Relative cost multiplier for work performed on this node, allowing
        heterogeneous-cluster experiments (1.0 = baseline speed).
    """

    node_id: str
    storage_capacity: int | None = None
    processing_cost: float = 1.0
    _partitions: Set[str] = field(default_factory=set, repr=False)
    _stored_points: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ClusterError("a ComputeNode requires a non-empty identifier")
        if self.storage_capacity is not None and self.storage_capacity <= 0:
            raise ClusterError("storage_capacity must be positive (or None for unlimited)")
        if self.processing_cost <= 0:
            raise ClusterError("processing_cost must be positive")

    # -- partition hosting ---------------------------------------------------------

    def host_partition(self, partition_id: str) -> None:
        """Register a partition as hosted on this node."""
        self._partitions.add(partition_id)
        self._stored_points.setdefault(partition_id, 0)

    def drop_partition(self, partition_id: str) -> None:
        """Unregister a partition (its points no longer count against capacity)."""
        self._partitions.discard(partition_id)
        self._stored_points.pop(partition_id, None)

    def hosts(self, partition_id: str) -> bool:
        """True when the partition is hosted on this node."""
        return partition_id in self._partitions

    @property
    def partitions(self) -> List[str]:
        """Identifiers of the partitions hosted here, sorted."""
        return sorted(self._partitions)

    # -- storage accounting ------------------------------------------------------------

    def record_points(self, partition_id: str, delta: int) -> None:
        """Adjust the number of points stored by a hosted partition."""
        if partition_id not in self._partitions:
            raise ClusterError(
                f"partition {partition_id!r} is not hosted on node {self.node_id!r}"
            )
        new_value = self._stored_points.get(partition_id, 0) + delta
        if new_value < 0:
            raise ClusterError(
                f"partition {partition_id!r} would store a negative number of points"
            )
        self._stored_points[partition_id] = new_value

    @property
    def stored_points(self) -> int:
        """Total points stored on this node across all hosted partitions."""
        return sum(self._stored_points.values())

    @property
    def used_fraction(self) -> float:
        """Fraction of storage capacity in use (0.0 when capacity is unlimited)."""
        if self.storage_capacity is None:
            return 0.0
        return self.stored_points / self.storage_capacity

    def has_room_for(self, additional_points: int = 1) -> bool:
        """True when the node can absorb ``additional_points`` more points."""
        if self.storage_capacity is None:
            return True
        return self.stored_points + additional_points <= self.storage_capacity

    def __repr__(self) -> str:
        capacity = "∞" if self.storage_capacity is None else str(self.storage_capacity)
        return (
            f"ComputeNode(id={self.node_id!r}, stored={self.stored_points}/{capacity}, "
            f"partitions={len(self._partitions)})"
        )
