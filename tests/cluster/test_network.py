"""Tests for the message bus (latency accounting, routing, tracing)."""

import pytest

from repro.cluster import Message, MessageBus, MessageKind, SimulatedClock
from repro.errors import ClusterError


@pytest.fixture
def bus():
    clock = SimulatedClock()
    bus = MessageBus(clock, remote_latency=5.0, local_latency=0.5)
    return bus


class TestRegistration:
    def test_register_and_node_of(self, bus):
        bus.register("P0", lambda message: None, "node-0")
        assert bus.node_of("P0") == "node-0"
        assert bus.registered_partitions == ["P0"]

    def test_node_of_unknown_partition(self, bus):
        with pytest.raises(ClusterError):
            bus.node_of("P9")

    def test_unregister(self, bus):
        bus.register("P0", lambda message: None, "node-0")
        bus.unregister("P0")
        assert bus.registered_partitions == []

    def test_relocate(self, bus):
        bus.register("P0", lambda message: None, "node-0")
        bus.relocate("P0", "node-3")
        assert bus.node_of("P0") == "node-3"

    def test_relocate_unknown_partition(self, bus):
        with pytest.raises(ClusterError):
            bus.relocate("P9", "node-0")

    def test_negative_latency_rejected(self):
        with pytest.raises(ClusterError):
            MessageBus(SimulatedClock(), remote_latency=-1.0)


class TestDelivery:
    def test_message_delivered_to_handler(self, bus):
        received = []
        bus.register("P1", received.append, "node-1")
        bus.register("P0", lambda message: None, "node-0")
        message = Message(kind=MessageKind.INSERT, source="P0", target="P1")
        bus.send(message)
        assert received == [message]

    def test_remote_delivery_charges_remote_latency_to_target(self, bus):
        bus.register("P0", lambda message: None, "node-0")
        bus.register("P1", lambda message: None, "node-1")
        bus.send(Message(kind=MessageKind.INSERT, source="P0", target="P1"))
        assert bus.clock.work_of("P1") == 5.0
        assert bus.clock.messages == 1

    def test_local_delivery_charges_local_latency(self, bus):
        bus.register("P0", lambda message: None, "node-0")
        bus.register("P1", lambda message: None, "node-0")
        bus.send(Message(kind=MessageKind.INSERT, source="P0", target="P1"))
        assert bus.clock.work_of("P1") == 0.5

    def test_undeliverable_message_raises(self, bus):
        with pytest.raises(ClusterError):
            bus.send(Message(kind=MessageKind.INSERT, source="P0", target="P9"))

    def test_tracing(self, bus):
        bus.register("P0", lambda message: None, "node-0")
        bus.register("P1", lambda message: None, "node-1")
        bus.enable_tracing()
        bus.send(Message(kind=MessageKind.INSERT, source="P0", target="P1"))
        assert len(bus.trace) == 1
        bus.enable_tracing(False)
        assert bus.trace == []


class TestMessageObject:
    def test_reply_swaps_source_and_target(self):
        message = Message(kind=MessageKind.KNN_DESCEND, source="P0", target="P1")
        reply = message.reply(MessageKind.KNN_RESULT, {"found": 3})
        assert reply.source == "P1" and reply.target == "P0"
        assert reply.payload == {"found": 3}

    def test_message_ids_are_monotonic(self):
        first = Message(kind=MessageKind.ACK, source="a", target="b")
        second = Message(kind=MessageKind.ACK, source="a", target="b")
        assert second.message_id > first.message_id
