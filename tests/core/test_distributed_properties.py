"""Property-based tests: the distributed tree is equivalent to the sequential one."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import LinearScanIndex
from repro.core import DistributedSemTree, KDTree, LabeledPoint, SemTreeConfig

coordinate = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
point_list = st.lists(st.tuples(coordinate, coordinate), min_size=2, max_size=60)


def to_points(raw):
    return [LabeledPoint.of(coords, label=index) for index, coords in enumerate(raw)]


@given(raw=point_list, query=st.tuples(coordinate, coordinate),
       k=st.integers(min_value=1, max_value=8),
       max_partitions=st.integers(min_value=1, max_value=6),
       partition_capacity=st.integers(min_value=8, max_value=40))
@settings(max_examples=60, deadline=None)
def test_distributed_knn_equals_exhaustive_search(raw, query, k, max_partitions,
                                                  partition_capacity):
    points = to_points(raw)
    config = SemTreeConfig(dimensions=2, bucket_size=4, max_partitions=max_partitions,
                           partition_capacity=partition_capacity)
    tree = DistributedSemTree(config)
    tree.insert_all(points)
    query_point = LabeledPoint.of(query)

    expected = [n.distance for n in LinearScanIndex(points).k_nearest(query_point, k)]
    actual = [n.distance for n in tree.k_nearest(query_point, k)]
    assert len(actual) == min(k, len(points))
    for a, b in zip(actual, expected):
        assert abs(a - b) < 1e-9


@given(raw=point_list, query=st.tuples(coordinate, coordinate),
       radius=st.floats(min_value=0.0, max_value=0.6, allow_nan=False),
       max_partitions=st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_distributed_range_equals_exhaustive_search(raw, query, radius, max_partitions):
    points = to_points(raw)
    config = SemTreeConfig(dimensions=2, bucket_size=4, max_partitions=max_partitions,
                           partition_capacity=16)
    tree = DistributedSemTree(config)
    tree.insert_all(points)
    query_point = LabeledPoint.of(query)

    expected = {n.point for n in LinearScanIndex(points).range_query(query_point, radius)}
    actual = {n.point for n in tree.range_query(query_point, radius)}
    assert actual == expected


@given(raw=point_list, max_partitions=st.integers(min_value=1, max_value=6),
       partition_capacity=st.integers(min_value=8, max_value=64))
@settings(max_examples=60, deadline=None)
def test_distribution_never_loses_or_duplicates_points(raw, max_partitions, partition_capacity):
    points = to_points(raw)
    config = SemTreeConfig(dimensions=2, bucket_size=4, max_partitions=max_partitions,
                           partition_capacity=partition_capacity)
    tree = DistributedSemTree(config)
    tree.insert_all(points)

    stored = tree.points()
    assert sorted(p.label for p in stored) == sorted(p.label for p in points)
    assert tree.partition_count <= max_partitions
    # partition-level accounting agrees with the actual leaf contents
    assert sum(p.point_count for p in tree.partitions) == len(points)


@given(raw=point_list, query=st.tuples(coordinate, coordinate),
       k=st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_distributed_and_sequential_trees_agree(raw, query, k):
    points = to_points(raw)
    sequential = KDTree(2, bucket_size=4)
    sequential.insert_all(points)
    distributed = DistributedSemTree(SemTreeConfig(
        dimensions=2, bucket_size=4, max_partitions=4, partition_capacity=16))
    distributed.insert_all(points)
    query_point = LabeledPoint.of(query)

    sequential_distances = [n.distance for n in sequential.k_nearest(query_point, k)]
    distributed_distances = [n.distance for n in distributed.k_nearest(query_point, k)]
    assert sequential_distances == distributed_distances
