"""Tests (including property-based tests) for the string distances."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantics import (
    damerau_levenshtein,
    exact_match_distance,
    hamming,
    jaro,
    jaro_winkler,
    jaro_winkler_distance,
    levenshtein,
    normalised_levenshtein,
)

short_text = st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), max_size=12)


class TestLevenshtein:
    @pytest.mark.parametrize("a, b, expected", [
        ("", "", 0),
        ("abc", "abc", 0),
        ("abc", "", 3),
        ("", "abc", 3),
        ("kitten", "sitting", 3),
        ("flaw", "lawn", 2),
        ("start-up", "startup", 1),
    ])
    def test_known_values(self, a, b, expected):
        assert levenshtein(a, b) == expected

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(short_text, short_text, short_text)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text, short_text)
    def test_bounded_by_longest_string(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))


class TestNormalisedLevenshtein:
    @given(short_text, short_text)
    def test_in_unit_interval(self, a, b):
        assert 0.0 <= normalised_levenshtein(a, b) <= 1.0

    def test_identical_strings_zero(self):
        assert normalised_levenshtein("abc", "abc") == 0.0

    def test_completely_different_strings_one(self):
        assert normalised_levenshtein("aaa", "bbb") == 1.0

    def test_both_empty(self):
        assert normalised_levenshtein("", "") == 0.0


class TestDamerauLevenshtein:
    def test_transposition_costs_one(self):
        assert damerau_levenshtein("ab", "ba") == 1
        assert levenshtein("ab", "ba") == 2

    @pytest.mark.parametrize("a, b, expected", [
        ("", "", 0),
        ("abc", "abc", 0),
        ("ca", "abc", 2),
        ("abcdef", "abcfed", 2),
    ])
    def test_known_values(self, a, b, expected):
        assert damerau_levenshtein(a, b) == expected

    @given(short_text, short_text)
    def test_never_exceeds_levenshtein(self, a, b):
        assert damerau_levenshtein(a, b) <= levenshtein(a, b)


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_known_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_no_common_characters(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty_string(self):
        assert jaro("", "abc") == 0.0

    @given(short_text, short_text)
    def test_in_unit_interval(self, a, b):
        assert 0.0 <= jaro(a, b) <= 1.0


class TestJaroWinkler:
    def test_prefix_boost(self):
        assert jaro_winkler("prefixed", "prefixes") >= jaro("prefixed", "prefixes")

    def test_distance_is_one_minus_similarity(self):
        assert jaro_winkler_distance("abc", "abd") == pytest.approx(
            1.0 - jaro_winkler("abc", "abd")
        )

    @given(short_text, short_text)
    def test_similarity_in_unit_interval(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0 + 1e-9


class TestHammingAndExactMatch:
    def test_hamming_counts_mismatches(self):
        assert hamming("karolin", "kathrin") == 3

    def test_hamming_requires_equal_length(self):
        with pytest.raises(ValueError):
            hamming("abc", "ab")

    def test_exact_match_distance(self):
        assert exact_match_distance("a", "a") == 0.0
        assert exact_match_distance("a", "b") == 1.0
