"""Write-ahead log: append/replay round trips, replay-on-open, torn tails."""

import pytest

from repro.errors import ParseError
from repro.ingest import WalRecord, WriteAheadLog
from repro.rdf import Triple

from ingest_corpus import INSERT_TRIPLES


class TestAppendReplay:
    def test_round_trip_preserves_triples_and_provenance(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.jsonl") as wal:
            for position, triple in enumerate(INSERT_TRIPLES):
                seq = wal.append(triple, document_id=f"doc-{position}")
                assert seq == position + 1
            records = list(wal.replay())
        assert [record.triple for record in records] == INSERT_TRIPLES
        assert [record.document_id for record in records] == [
            f"doc-{position}" for position in range(len(INSERT_TRIPLES))
        ]
        assert [record.seq for record in records] == list(range(1, len(INSERT_TRIPLES) + 1))

    def test_document_id_is_optional(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.jsonl") as wal:
            wal.append(INSERT_TRIPLES[0])
            (record,) = wal.replay()
        assert record.document_id is None

    def test_replay_after_skips_applied_records(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.jsonl") as wal:
            for triple in INSERT_TRIPLES[:4]:
                wal.append(triple)
            tail = list(wal.replay(after=2))
        assert [record.seq for record in tail] == [3, 4]

    def test_record_dict_round_trip(self):
        record = WalRecord(seq=7, triple=INSERT_TRIPLES[0], document_id="d")
        assert WalRecord.from_dict(record.to_dict()) == record


class TestReplayOnOpen:
    def test_sequence_continues_across_reopen(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append(INSERT_TRIPLES[0])
            wal.append(INSERT_TRIPLES[1])
        with WriteAheadLog(path) as wal:
            assert wal.last_seq == 2
            assert len(wal) == 2
            assert wal.append(INSERT_TRIPLES[2]) == 3

    def test_non_contiguous_log_is_rejected(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append(INSERT_TRIPLES[0])
        text = path.read_text()
        path.write_text(text + text.replace('"seq":1', '"seq":5'))
        with pytest.raises(ParseError, match="not contiguous"):
            WriteAheadLog(path)


class TestTornTail:
    def test_torn_final_line_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append(INSERT_TRIPLES[0])
            wal.append(INSERT_TRIPLES[1])
        # simulate a crash mid-append: a half-written record with no newline
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq":3,"triple":{"subject"')
        with WriteAheadLog(path) as wal:
            assert wal.last_seq == 2
            assert wal.torn_records == 1
            # the next append reuses the torn record's sequence number
            assert wal.append(INSERT_TRIPLES[2]) == 3
            assert [record.seq for record in wal.replay()] == [1, 2, 3]

    def test_corruption_before_the_tail_is_fatal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append(INSERT_TRIPLES[0])
            wal.append(INSERT_TRIPLES[1])
        lines = path.read_text().splitlines()
        lines[0] = '{"seq":1,"broken'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ParseError):
            WriteAheadLog(path)


class TestTruncation:
    def test_truncate_through_drops_covered_prefix(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            for triple in INSERT_TRIPLES[:5]:
                wal.append(triple)
            dropped = wal.truncate_through(3)
            assert dropped == 3
            assert len(wal) == 2
            assert [record.seq for record in wal.replay()] == [4, 5]
            # appends keep numbering from the old stream
            assert wal.append(INSERT_TRIPLES[5]) == 6

    def test_truncate_everything_leaves_an_appendable_log(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append(INSERT_TRIPLES[0])
            wal.truncate_through(1)
            assert len(wal) == 0
            assert wal.append(INSERT_TRIPLES[1]) == 2


class TestDurabilityOptions:
    def test_fsync_mode_smoke(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.jsonl", fsync=True) as wal:
            assert wal.append(Triple.of("OBSW001", "Fun:send_msg", "MsgType:x")) == 1
        reopened = WriteAheadLog(tmp_path / "wal.jsonl", fsync=True)
        assert reopened.last_seq == 1
        reopened.close()
