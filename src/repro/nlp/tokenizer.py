"""A small tokenizer for controlled-English requirement sentences.

The paper delegates the text-to-triples step to external NLP facilities [6];
the reproduction closes the pipeline with a deterministic tokenizer and
pattern-based extractor sufficient for the controlled-English sentences the
synthetic requirements generator emits (see
:mod:`repro.requirements.generator`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

__all__ = ["Token", "tokenize", "split_sentences", "normalise_identifier"]

_TOKEN_RE = re.compile(r"[A-Za-z0-9_][A-Za-z0-9_\-]*|[.,;:!?]")
_SENTENCE_END_RE = re.compile(r"(?<=[.!?])\s+")


@dataclass(frozen=True, slots=True)
class Token:
    """A token with its surface form and lower-cased normal form."""

    text: str

    @property
    def normal(self) -> str:
        """The lower-cased form used by the extractor's pattern matching."""
        return self.text.lower()

    @property
    def is_punctuation(self) -> bool:
        """True for sentence punctuation tokens."""
        return self.text in {".", ",", ";", ":", "!", "?"}

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.text


def tokenize(text: str) -> List[Token]:
    """Split a sentence into word and punctuation tokens (whitespace dropped)."""
    return [Token(match.group(0)) for match in _TOKEN_RE.finditer(text)]


def split_sentences(text: str) -> List[str]:
    """Split a paragraph into sentences on terminal punctuation.

    Blank fragments are dropped; the terminal punctuation stays attached to
    its sentence so the tokenizer sees it.
    """
    parts = _SENTENCE_END_RE.split(text.strip())
    return [part.strip() for part in parts if part.strip()]


def normalise_identifier(text: str) -> str:
    """Normalise a multi-word parameter into the generator's identifier form.

    ``"pre launch phase"`` → ``"pre-launch phase"`` is *not* attempted; the
    normalisation only collapses whitespace and strips punctuation, because
    the synthetic corpus uses hyphenated identifiers natively.
    """
    cleaned = re.sub(r"[.,;:!?]", "", text)
    return re.sub(r"\s+", " ", cleaned).strip()
