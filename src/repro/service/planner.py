"""Query normalisation and routing for the serving layer.

The planner is the single-threaded front half of the
:class:`~repro.service.engine.QueryEngine`: it embeds each query triple into
the index's vector space exactly once, classifies the query (k-NN, range,
optionally pattern-filtered), derives the cache key, and deduplicates
identical queries within a batch so the tree is searched once per distinct
query.  Everything downstream (cache lookups, concurrent tree searches)
works on :class:`PlannedQuery` objects and never touches the semantic
distance again.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Hashable, List, Optional, Protocol, Sequence, Tuple

from repro.core.point import LabeledPoint
from repro.core.semtree import SearchOutcome, SemanticMatch
from repro.errors import QueryError
from repro.rdf.triple import Triple, TriplePattern

__all__ = ["QueryKind", "QuerySpec", "PlannedQuery", "QueryPlanner", "ServableIndex"]


class ServableIndex(Protocol):
    """What the serving layer needs from an index.

    :class:`~repro.core.semtree.SemTreeIndex` implements it directly;
    :class:`~repro.ingest.ingesting.IngestingIndex` implements it with
    delta-merged semantics so the same engine serves a live write stream.
    """

    @property
    def generation(self) -> int:
        """Cache epoch: results computed at an older generation are stale."""
        ...

    def embed_query(self, triple: Triple) -> LabeledPoint:
        """Project a query triple into the index's vector space."""
        ...

    def search_k_nearest(self, point: LabeledPoint, k: int) -> SearchOutcome:
        """The cacheable side of a k-NN read."""
        ...

    def search_range(self, point: LabeledPoint, radius: float) -> SearchOutcome:
        """The cacheable side of a range read."""
        ...

    def overlay_matches(self, kind: str, point: LabeledPoint, parameter: float,
                        matches: Tuple[SemanticMatch, ...],
                        generation: int) -> Optional[Tuple[SemanticMatch, ...]]:
        """Bring matches computed at ``generation`` up to date (None = redo)."""
        ...


class QueryKind(Enum):
    """The two retrieval modes of the paper, as served by the engine."""

    KNN = "knn"
    RANGE = "range"


@dataclass(frozen=True, slots=True)
class QuerySpec:
    """One client query: a triple plus the retrieval parameters.

    Attributes
    ----------
    triple:
        The query triple, projected into the embedded space at planning time.
    kind:
        k-NN or range retrieval.
    k:
        Number of neighbours for k-NN queries.
    radius:
        Embedded-space radius for range queries.
    pattern:
        Optional triple pattern; matches not satisfying it are filtered out
        of the result (k-NN queries over-fetch to compensate).
    deadline:
        Optional per-query time budget in seconds, enforced by the engine.
    allow_partial:
        Opt-in graceful degradation for sharded serving: when partitions
        fail, accept an answer from the surviving ones (marked with a
        structured ``degraded`` field) instead of an error.  The default
        stays fail-loud, and a local index ignores the flag (it has no
        partitions to lose).  Degraded results are never cached.
    """

    triple: Triple
    kind: QueryKind = QueryKind.KNN
    k: int = 3
    radius: float = 0.0
    pattern: Optional[TriplePattern] = None
    deadline: Optional[float] = None
    allow_partial: bool = False

    def __post_init__(self) -> None:
        if self.kind is QueryKind.KNN and self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")
        if self.kind is QueryKind.RANGE and self.radius < 0:
            raise QueryError("the range radius must be non-negative")
        if self.deadline is not None and self.deadline <= 0:
            raise QueryError("a deadline must be a positive number of seconds")

    @classmethod
    def k_nearest(cls, triple: Triple, k: int = 3, *,
                  pattern: TriplePattern | None = None,
                  deadline: float | None = None,
                  allow_partial: bool = False) -> "QuerySpec":
        """A k-NN query spec."""
        return cls(triple=triple, kind=QueryKind.KNN, k=k, pattern=pattern,
                   deadline=deadline, allow_partial=allow_partial)

    @classmethod
    def range_query(cls, triple: Triple, radius: float, *,
                    pattern: TriplePattern | None = None,
                    deadline: float | None = None,
                    allow_partial: bool = False) -> "QuerySpec":
        """A range query spec."""
        return cls(triple=triple, kind=QueryKind.RANGE, radius=radius,
                   pattern=pattern, deadline=deadline,
                   allow_partial=allow_partial)


@dataclass(frozen=True, slots=True)
class PlannedQuery:
    """A spec with its embedded query point and result-cache key.

    The cache key covers everything that determines the result — the query's
    *embedded coordinates* (not the triple: distinct triples that project to
    the same point are interchangeable), the retrieval parameters and the
    pattern — but not the deadline, which only shapes execution.
    """

    spec: QuerySpec
    point: LabeledPoint
    cache_key: Tuple[Hashable, ...]


class QueryPlanner:
    """Plans query specs against one built, servable index."""

    def __init__(self, index: ServableIndex):
        self.index = index

    def plan(self, spec: QuerySpec) -> PlannedQuery:
        """Embed the query triple once and derive its cache key."""
        return self._plan_with_point(spec, self.index.embed_query(spec.triple))

    @staticmethod
    def _plan_with_point(spec: QuerySpec, point: LabeledPoint) -> PlannedQuery:
        if spec.kind is QueryKind.KNN:
            parameters: Tuple[Hashable, ...] = ("k", spec.k)
        else:
            parameters = ("radius", spec.radius)
        cache_key = (spec.kind.value, point.coordinates, parameters, spec.pattern)
        return PlannedQuery(spec=spec, point=point, cache_key=cache_key)

    def plan_batch(self, specs: Sequence[QuerySpec]) -> Tuple[List[PlannedQuery], List[int]]:
        """Plan a batch, deduplicating identical queries.

        Each distinct *triple* in the batch is embedded exactly once (the
        projection is the expensive part — O(pivots) semantic-distance
        evaluations), however many specs reference it.

        Returns ``(unique, assignment)``: the distinct planned queries in
        first-occurrence order, and one index into ``unique`` per input spec,
        so the engine executes each distinct query once and fans the result
        back out to every duplicate.
        """
        point_of: dict = {}
        unique: List[PlannedQuery] = []
        position_of: dict = {}
        assignment: List[int] = []
        for spec in specs:
            point = point_of.get(spec.triple)
            if point is None:
                point = self.index.embed_query(spec.triple)
                point_of[spec.triple] = point
            planned = self._plan_with_point(spec, point)
            # Dedup within the batch on (cache key, allow_partial): the two
            # modes share the *cache* (cached entries are always exact) but
            # must not share an in-flight execution — a degraded answer for
            # a partial-tolerant spec would leak into an exact query's result.
            dedup_key = (planned.cache_key, spec.allow_partial)
            position = position_of.get(dedup_key)
            if position is None:
                position = len(unique)
                position_of[dedup_key] = position
                unique.append(planned)
            assignment.append(position)
        return unique, assignment
