"""Simulated time accounting for the distributed experiments.

The paper ran SemTree on an 8-node cluster and timed distributed insertion,
k-nearest and range queries.  The reproduction runs on one machine, so wall
clock alone cannot show the benefit of parallel partitions.  The
:class:`SimulatedClock` therefore charges *costs* to named resources
(partitions / compute nodes) and to the network, and reports:

``total_work``
    The sum of all charged costs — what a single sequential machine would
    pay (this is what grows when partitioning adds overhead).

``critical_path``
    The cost of the most loaded resource plus all network charges — a
    simple bulk-synchronous approximation of the parallel makespan (this is
    what shrinks when independent partitions work in parallel).

Costs are dimensionless "work units"; the benchmark harness scales them to
milliseconds with a calibration constant so the reported curves read like
the paper's timing figures.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict

__all__ = ["SimulatedClock", "CostSnapshot"]


@dataclass(frozen=True, slots=True)
class CostSnapshot:
    """An immutable snapshot of the clock's accumulated costs."""

    total_work: float
    critical_path: float
    network_cost: float
    per_resource: Dict[str, float]
    messages: int


class SimulatedClock:
    """Accumulates per-resource work and network costs.

    The model is intentionally simple (the paper does not describe its
    cluster's performance model): every resource runs in parallel with the
    others, and network transfers serialise with the busiest resource.
    """

    def __init__(self) -> None:
        self._work: Dict[str, float] = defaultdict(float)
        self._network_cost = 0.0
        self._messages = 0
        # The serving layer traverses the tree from worker threads, and every
        # traversal charges costs here; the read-modify-write accumulations
        # must not lose updates under that concurrency.
        self._lock = threading.Lock()

    # -- charging ----------------------------------------------------------------

    def charge(self, resource: str, cost: float) -> None:
        """Charge ``cost`` work units to a named resource (e.g. a partition id)."""
        if cost < 0:
            raise ValueError(f"cost must be non-negative, got {cost}")
        with self._lock:
            self._work[resource] += cost

    def charge_message(self, cost: float = 1.0, *, resource: str | None = None) -> None:
        """Charge one network message of the given cost.

        When ``resource`` is given (normally the *receiving* partition), the
        latency is charged to that resource — point-to-point links operate
        in parallel.  Without a resource the cost goes to the shared
        ``network`` pool, which serialises with every resource in the
        critical path (a deliberately pessimistic fallback).
        """
        if cost < 0:
            raise ValueError(f"cost must be non-negative, got {cost}")
        with self._lock:
            self._messages += 1
            if resource is not None:
                self._work[resource] += cost
            else:
                self._network_cost += cost

    # -- readings -----------------------------------------------------------------

    @property
    def total_work(self) -> float:
        """Total work across all resources plus network cost (sequential-equivalent)."""
        with self._lock:
            return sum(self._work.values()) + self._network_cost

    @property
    def critical_path(self) -> float:
        """Makespan approximation: busiest resource plus all network cost."""
        with self._lock:
            return max(self._work.values(), default=0.0) + self._network_cost

    @property
    def network_cost(self) -> float:
        """Accumulated network cost."""
        return self._network_cost

    @property
    def messages(self) -> int:
        """Number of messages charged so far."""
        return self._messages

    def work_of(self, resource: str) -> float:
        """Work charged to one resource."""
        return self._work.get(resource, 0.0)

    def snapshot(self) -> CostSnapshot:
        """Return an immutable snapshot of the current accounting."""
        with self._lock:
            per_resource = dict(self._work)
            network_cost = self._network_cost
            messages = self._messages
        return CostSnapshot(
            total_work=sum(per_resource.values()) + network_cost,
            critical_path=max(per_resource.values(), default=0.0) + network_cost,
            network_cost=network_cost,
            per_resource=per_resource,
            messages=messages,
        )

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            self._work.clear()
            self._network_cost = 0.0
            self._messages = 0

    def __repr__(self) -> str:
        return (
            f"SimulatedClock(total_work={self.total_work:.1f}, "
            f"critical_path={self.critical_path:.1f}, messages={self._messages})"
        )
