"""A parser and serialiser for the paper's Turtle-like triple listings.

The paper shows resources in a "Turtle-like format"::

    ('OBSW001', Fun:acquire_in, InType:pre-launch phase)
    ('OBSW001', Fun:accept_cmd, CmdType:start-up)
    ('OBSW001', Fun:send_msg, MsgType:power amplifier)

plus optional ``@prefix`` directives and ``#`` comments.  This module parses
that format into :class:`~repro.rdf.triple.Triple` objects and serialises
them back.  The order of triples is preserved because, as the paper notes,
"the order of the triples reflects the temporal sequence of the requirement
elements".
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List

from repro.errors import ParseError
from repro.rdf.namespace import NamespaceRegistry
from repro.rdf.terms import Concept, Literal, Term
from repro.rdf.triple import Triple

__all__ = ["parse_turtle", "parse_term", "serialise_turtle", "serialise_term"]

_PREFIX_RE = re.compile(r"^@prefix\s+(?P<prefix>[A-Za-z_][\w-]*)?\s*:\s*(?P<ns>\S+)\s*\.?\s*$")
_TRIPLE_RE = re.compile(r"^\(\s*(?P<body>.*?)\s*\)\s*$")


def parse_term(text: str) -> Term:
    """Parse one term of a Turtle-like triple.

    Accepted forms:

    * ``'quoted literal'`` or ``"quoted literal"`` → :class:`Literal`
    * ``Prefix:local name`` → :class:`Concept` with that prefix (local names
      may contain spaces and dashes, as in ``InType:pre-launch phase``)
    * ``bare_name`` → :class:`Concept` in the default vocabulary
    """
    text = text.strip()
    if not text:
        raise ParseError("empty term")
    if (text[0] == text[-1] == "'") or (text[0] == text[-1] == '"'):
        if len(text) < 2:
            raise ParseError(f"malformed literal: {text!r}")
        return Literal(text[1:-1])
    if ":" in text:
        prefix, _, name = text.partition(":")
        prefix = prefix.strip()
        name = name.strip()
        if not name:
            raise ParseError(f"malformed prefixed concept: {text!r}")
        return Concept(name, prefix)
    return Concept(text)


def _split_triple_body(body: str, line_number: int) -> List[str]:
    """Split the inside of ``( ... )`` on top-level commas, honouring quotes."""
    parts: List[str] = []
    current: List[str] = []
    quote: str | None = None
    for char in body:
        if quote is not None:
            current.append(char)
            if char == quote:
                quote = None
            continue
        if char in "'\"":
            quote = char
            current.append(char)
            continue
        if char == ",":
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if quote is not None:
        raise ParseError("unterminated quoted literal", line_number)
    parts.append("".join(current))
    return parts


def parse_turtle(text: str, *, registry: NamespaceRegistry | None = None,
                 require_known_prefixes: bool = False) -> List[Triple]:
    """Parse a Turtle-like document into an ordered list of triples.

    Parameters
    ----------
    text:
        The document text (one triple or directive per line).
    registry:
        Optional :class:`NamespaceRegistry`; ``@prefix`` directives found in
        the document are registered into it.
    require_known_prefixes:
        When true, every prefix used by a concept must already be bound in
        ``registry`` (or bound by a preceding ``@prefix`` directive);
        unknown prefixes raise :class:`~repro.errors.ParseError`.
    """
    triples: List[Triple] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        prefix_match = _PREFIX_RE.match(line)
        if prefix_match:
            if registry is not None:
                prefix = prefix_match.group("prefix") or ""
                namespace = prefix_match.group("ns").rstrip(".")
                registry.bind(prefix, namespace, overwrite=True)
            continue
        triple_match = _TRIPLE_RE.match(line)
        if not triple_match:
            raise ParseError(f"cannot parse line: {raw_line!r}", line_number)
        parts = _split_triple_body(triple_match.group("body"), line_number)
        if len(parts) != 3:
            raise ParseError(
                f"a triple needs exactly 3 terms, found {len(parts)}", line_number
            )
        terms = [parse_term(part) for part in parts]
        if require_known_prefixes and registry is not None:
            for term in terms:
                if isinstance(term, Concept) and not registry.knows(term.prefix):
                    raise ParseError(f"unknown prefix {term.prefix!r}", line_number)
        triples.append(Triple(*terms))
    return triples


def serialise_term(term: Term) -> str:
    """Serialise one term back to the Turtle-like syntax."""
    if isinstance(term, Literal):
        return f"'{term.value}'"
    if isinstance(term, Concept):
        return term.qname
    raise ParseError(f"cannot serialise term of type {type(term).__name__}")


def serialise_turtle(triples: Iterable[Triple],
                     registry: NamespaceRegistry | None = None) -> str:
    """Serialise triples (and optional prefix bindings) to a Turtle-like document."""
    lines: List[str] = []
    if registry is not None:
        for prefix, namespace in registry:
            if prefix == "":
                continue
            lines.append(f"@prefix {prefix}: {namespace} .")
        if lines:
            lines.append("")
    for triple in triples:
        subject = serialise_term(triple.subject)
        predicate = serialise_term(triple.predicate)
        obj = serialise_term(triple.object)
        lines.append(f"({subject}, {predicate}, {obj})")
    return "\n".join(lines) + ("\n" if lines else "")


def iter_parse_turtle(lines: Iterable[str]) -> Iterator[Triple]:
    """Streaming variant of :func:`parse_turtle` over an iterable of lines."""
    buffer: List[str] = []
    for line in lines:
        buffer.append(line)
    yield from parse_turtle("\n".join(buffer))
