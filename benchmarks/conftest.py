"""Shared helpers for the benchmark harness.

Every ``bench_*`` module reproduces one table or figure of the paper's
evaluation (see DESIGN.md, experiment index).  Each module contains

* pytest-benchmark cases that time a representative configuration of the
  experiment (so ``pytest benchmarks/ --benchmark-only`` produces a timing
  table), and
* one ``test_report_*`` case that runs the full parameter sweep, prints the
  same series the paper plots, writes the table to
  ``benchmarks/results/<experiment>.txt`` (for pasting into EXPERIMENTS.md)
  and the machine-readable twin to ``BENCH_<experiment>.json`` at the
  repository root (for tracking the performance trajectory in git).

Absolute numbers are not expected to match the paper (different hardware,
simulated cluster); the *shape* assertions of each report test encode what
must hold.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.evaluation import Experiment, format_experiment

#: Where the report tests drop their plain-text tables.
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: Where the machine-readable ``BENCH_<experiment>.json`` files land.
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_report(results_dir: pathlib.Path, experiment: Experiment,
                 metrics: list[str]) -> str:
    """Format an experiment, print it, persist the text table and the JSON twin.

    The aligned text table goes to ``benchmarks/results/<experiment>.txt``;
    the full metric → series mapping (:meth:`Experiment.to_payload`) goes to
    ``BENCH_<experiment>.json`` at the repository root so committed runs
    record the perf trajectory in a diff-friendly, scriptable form.
    """
    text = format_experiment(experiment, metrics)
    path = results_dir / f"{experiment.experiment_id}.txt"
    path.write_text(text + "\n")
    json_path = REPO_ROOT / f"BENCH_{experiment.experiment_id}.json"
    json_path.write_text(json.dumps(experiment.to_payload(), indent=2) + "\n")
    print("\n" + text)
    return text
