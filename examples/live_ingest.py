"""Live ingestion: stream inserts while serving queries, then crash and recover.

The walkthrough behind ``docs/ingest.md``:

1. build a small requirements index and wrap it in an
   :class:`~repro.ingest.ingesting.IngestingIndex` (write-ahead log + delta
   segment) with a background compactor;
2. stream inserts *while* answering queries through the
   :class:`~repro.service.engine.QueryEngine` — no quiescing, and every
   answer matches an index rebuilt from scratch;
3. checkpoint, keep inserting, "crash", and recover from snapshot + WAL
   tail with identical answers.

Run with::

    PYTHONPATH=src python examples/live_ingest.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import SemTreeConfig, SemTreeIndex
from repro.ingest import BackgroundCompactor, IngestingIndex
from repro.rdf import Triple
from repro.requirements import build_requirement_distance, build_requirement_vocabularies
from repro.service import QueryEngine, QuerySpec

ACTORS = ["OBSW001", "OBSW002", "OBSW003", "OBSW004"]

BASE_TRIPLES = [
    Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up"),
    Triple.of("OBSW001", "Fun:send_msg", "MsgType:heartbeat"),
    Triple.of("OBSW002", "Fun:enable_mode", "ModeType:safe-mode"),
    Triple.of("OBSW002", "Fun:accept_cmd", "CmdType:shutdown"),
    Triple.of("OBSW003", "Fun:withhold_tm", "TmType:volt-frame"),
]

STREAM = [
    Triple.of("OBSW003", "Fun:acquire_in", "InType:gps"),
    Triple.of("OBSW003", "Fun:send_msg", "MsgType:pong"),
    Triple.of("OBSW003", "Fun:transmit_tm", "TmType:new-frame"),
    Triple.of("OBSW004", "Fun:accept_cmd", "CmdType:reset"),
    Triple.of("OBSW004", "Fun:enable_mode", "ModeType:survival-mode"),
    Triple.of("OBSW004", "Fun:block_cmd", "CmdType:start-up"),
    Triple.of("OBSW004", "Fun:send_msg", "MsgType:ping"),
    Triple.of("OBSW004", "Fun:transmit_tm", "TmType:temp-frame"),
]

QUERY = Triple.of("OBSW003", "Fun:transmit_tm", "TmType:new-frame")


def build_base(distance) -> SemTreeIndex:
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=3, bucket_size=4, max_partitions=2, partition_capacity=8,
    ))
    index.add_triples(BASE_TRIPLES)
    return index.build()


def canonical(matches):
    return sorted((round(m.distance, 9), str(m.triple)) for m in matches)


def main() -> None:
    distance = build_requirement_distance(build_requirement_vocabularies(ACTORS))
    workdir = Path(tempfile.mkdtemp(prefix="semtree-ingest-"))
    wal_path = workdir / "wal.jsonl"
    snap_path = workdir / "snapshot.json"

    live = IngestingIndex(build_base(distance), wal_path, compaction_threshold=3)
    spec = QuerySpec.k_nearest(QUERY, 3)

    print(f"Base index: {len(live)} triples, generation {live.generation}")
    with QueryEngine(live, workers=2) as engine, \
            BackgroundCompactor(live, poll_interval=0.01):
        for position, triple in enumerate(STREAM, start=1):
            live.insert(triple, document_id=f"doc-{position}")
            result = engine.execute(spec)
            best = result.matches[0]
            print(f"  insert #{position}: delta={len(live.delta):>2}  "
                  f"gen={live.generation}  cached={str(result.cached):5}  "
                  f"best={best.triple} @ {best.distance:.3f}")

        # every answer equals a from-scratch rebuild over base + stream prefix
        oracle = build_base(distance)
        oracle.insert_triples(STREAM)
        live_answer = canonical(engine.execute(spec).matches)
        print("Answers equal a full rebuild:",
              live_answer == canonical(oracle.k_nearest(QUERY, 3)))

        stats = live.statistics()
        print(f"Ingested {stats['inserts']} triples at "
              f"{stats['ingest_qps']:.0f} inserts/sec, "
              f"{stats['compactions']} compactions")

    # -- checkpoint, keep writing, crash, recover ---------------------------------------
    live.checkpoint(snap_path)
    extra = Triple.of("OBSW001", "Fun:block_cmd", "CmdType:shutdown")
    live.insert(extra)          # after the checkpoint: lives only in the WAL
    del live                    # simulate a crash (no close, no new snapshot)

    recovered = IngestingIndex.recover(snap_path, wal_path, distance)
    oracle = build_base(distance)
    oracle.insert_triples(STREAM + [extra])
    identical = canonical(recovered.k_nearest(QUERY, 3)) == \
        canonical(oracle.k_nearest(QUERY, 3))
    print(f"Recovered from snapshot + WAL tail "
          f"(replayed {recovered.statistics()['replayed']} records)")
    print("Recovered service answers identically:", identical)


if __name__ == "__main__":
    main()
