"""The delta segment: freshly inserted points, queryable before compaction.

The delta is the memtable of the LSM analogy: an append-only, in-memory list
of FastMap-projected points that absorbs the insert stream while the
distributed tree stays immutable between compactions.  Queries linear-scan
it — it is bounded by the compaction threshold, so the scan is a small
constant on top of the tree search — and the merge is *exact*:

* k-NN: the merged top-``k`` of tree ∪ delta is a subset of the tree's own
  top-``k`` plus the delta (extra candidates can only displace tree points,
  never resurrect one the tree already ranked out), so offering every delta
  point to the tree's result list reproduces a from-scratch rebuild.
* range: results are a plain union — ``range(tree ∪ delta) =
  range(tree) ∪ range(delta)``.

Appends and snapshots are guarded by a mutex; snapshots are immutable
tuples, so readers merge against a frozen prefix of the insert stream
(linearizable visibility) while inserters keep appending.
"""

from __future__ import annotations

import threading
from typing import List, Tuple

from repro.core.knn import Neighbour
from repro.core.point import LabeledPoint, euclidean_distance

__all__ = ["DeltaIndex"]


class DeltaIndex:
    """The in-memory linear-scan segment of an :class:`IngestingIndex`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._points: List[LabeledPoint] = []
        self._last_seq = 0

    # -- writes -------------------------------------------------------------------------

    def add(self, point: LabeledPoint, seq: int) -> None:
        """Append one projected point, carrying its WAL sequence number."""
        with self._lock:
            self._points.append(point)
            self._last_seq = seq

    def drain(self) -> Tuple[Tuple[LabeledPoint, ...], int]:
        """Atomically take every point out (compaction); returns ``(points, last_seq)``.

        ``last_seq`` is the WAL sequence number of the newest drained point —
        after the fold it becomes the index's *applied* sequence, the replay
        cut-off recorded by checkpoints.
        """
        with self._lock:
            points = tuple(self._points)
            self._points = []
            return points, self._last_seq

    # -- reads --------------------------------------------------------------------------

    def points(self) -> Tuple[LabeledPoint, ...]:
        """An immutable snapshot of the current delta contents."""
        with self._lock:
            return tuple(self._points)

    def all_neighbours(self, query: LabeledPoint) -> List[Neighbour]:
        """Every delta point with its distance to ``query`` (k-NN merge side)."""
        return [
            Neighbour(point, euclidean_distance(query, point))
            for point in self.points()
        ]

    def neighbours_within(self, query: LabeledPoint, radius: float) -> List[Neighbour]:
        """Delta points within ``radius`` of ``query`` (range merge side)."""
        return [
            neighbour for neighbour in self.all_neighbours(query)
            if neighbour.distance <= radius
        ]

    @property
    def last_seq(self) -> int:
        """WAL sequence number of the newest point currently in the delta."""
        with self._lock:
            return self._last_seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)

    def __repr__(self) -> str:
        return f"DeltaIndex(points={len(self)}, last_seq={self.last_seq})"
