"""In-process metrics history: a ring buffer of registry deltas.

:class:`MetricsHistory` scrapes a :class:`~repro.obs.registry.MetricsRegistry`
every ``interval`` seconds, diffs the scrape against the previous one, and
keeps the derived rates — QPS, latency quantiles from histogram-bucket
deltas, cache hit rate, queue wait, scatter fan-out, distance computations
— in a fixed-size deque.  That gives every node a short-term "what just
happened" record (served as ``GET /v1/history``, rendered live by
``python -m repro.obs.top``) without any external time-series database.

Quantiles from deltas: two consecutive cumulative scrapes of a histogram
bracket the observations that landed *between* them, so subtracting the
bucket counts yields the latency distribution of just that window.  The
reported quantile is the upper bound of the bucket where the quantile
falls — the same estimate Prometheus's ``histogram_quantile`` makes.

Everything works on whichever families the registry actually has: a query
server derives latency from ``repro_query_latency_seconds``, a shard falls
back to ``repro_shard_scan_seconds``, and series a role does not export
simply render as ``null`` in its entries.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry

__all__ = ["DEFAULT_CAPACITY", "DEFAULT_INTERVAL", "MetricsHistory"]

#: Snapshot cadence in seconds and entries kept: 5 s × 360 = a 30-minute window.
DEFAULT_INTERVAL = 5.0
DEFAULT_CAPACITY = 360

#: Histogram families consulted for the latency series, in preference order.
_LATENCY_FAMILIES = ("repro_query_latency_seconds", "repro_shard_scan_seconds")

_Scrape = Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]


def _scrape(registry: MetricsRegistry) -> _Scrape:
    """Flatten the registry into ``{(sample name, labels): value}``."""
    flat: _Scrape = {}
    for family in registry.collect():
        for sample in family.collect():
            flat[(sample.name, sample.labels)] = sample.value
    return flat


def _delta(current: _Scrape, previous: _Scrape, name: str,
           match: Optional[Dict[str, str]] = None) -> float:
    """Summed increase of every series named ``name`` since ``previous``.

    Per-series, so a counter family growing a new label child between
    scrapes contributes its full value (its previous reading is 0).
    Negative per-series deltas (a restarted backing counter) clamp to 0.
    ``match`` restricts to series whose labels include every given pair.
    """
    total = 0.0
    for (sample_name, labels), value in current.items():
        if sample_name != name:
            continue
        if match is not None:
            attached = dict(labels)
            if any(attached.get(k) != v for k, v in match.items()):
                continue
        total += max(0.0, value - previous.get((sample_name, labels), 0.0))
    return total


def _bucket_deltas(current: _Scrape, previous: _Scrape,
                   family: str) -> List[Tuple[float, float]]:
    """Per-bucket (non-cumulative) observation deltas, sorted by bound."""
    by_bound: Dict[float, float] = {}
    for (sample_name, labels), value in current.items():
        if sample_name != f"{family}_bucket":
            continue
        bound = dict(labels).get("le")
        if bound is None:
            continue
        numeric = float("inf") if bound == "+Inf" else float(bound)
        increase = max(0.0, value - previous.get((sample_name, labels), 0.0))
        by_bound[numeric] = by_bound.get(numeric, 0.0) + increase
    bounds = sorted(by_bound)
    # Cumulative -> per-bucket within the window.
    deltas: List[Tuple[float, float]] = []
    below = 0.0
    for bound in bounds:
        deltas.append((bound, max(0.0, by_bound[bound] - below)))
        below = by_bound[bound]
    return deltas


def _quantile(deltas: List[Tuple[float, float]], q: float) -> Optional[float]:
    """The q-quantile's bucket upper bound, in seconds; None when empty."""
    total = sum(count for _, count in deltas)
    if total <= 0:
        return None
    target = q * total
    seen = 0.0
    last_finite = 0.0
    for bound, count in deltas:
        seen += count
        if bound != float("inf"):
            last_finite = bound
        if seen >= target:
            return last_finite if bound == float("inf") else bound
    return last_finite


class MetricsHistory:
    """A background scraper keeping the last ``capacity`` registry deltas.

    Parameters
    ----------
    registry:
        The registry to scrape (shared with the Prometheus exposition,
        so history and scrapes can never disagree).
    interval:
        Seconds between snapshots.
    capacity:
        Entries retained; the deque drops the oldest beyond it.
    """

    def __init__(self, registry: MetricsRegistry, *,
                 interval: float = DEFAULT_INTERVAL,
                 capacity: int = DEFAULT_CAPACITY):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.registry = registry
        self.interval = float(interval)
        self.capacity = int(capacity)
        self._entries: deque = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._previous: Optional[_Scrape] = None
        self._previous_at: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------------------

    def start(self) -> "MetricsHistory":
        """Take the baseline scrape and start the snapshot thread."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop.clear()
        self._baseline()
        thread = threading.Thread(target=self._run, name="repro-history",
                                  daemon=True)
        with self._lock:
            self._thread = thread
        thread.start()
        return self

    def stop(self) -> None:
        """Stop the snapshot thread; recorded entries remain readable."""
        with self._lock:
            thread = self._thread
            self._thread = None
        self._stop.set()
        if thread is not None:
            thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except Exception:  # pragma: no cover - keep the thread alive
                # A scrape callback raising must not kill the history
                # thread; the next interval retries against live state.
                continue

    # -- snapshotting -------------------------------------------------------------------

    def _baseline(self) -> None:
        scrape = _scrape(self.registry)
        with self._lock:
            self._previous = scrape
            self._previous_at = time.monotonic()

    def tick(self) -> Dict[str, Any]:
        """Take one snapshot now and append its entry (also used by tests)."""
        now = time.monotonic()
        scrape = _scrape(self.registry)
        with self._lock:
            previous = self._previous
            previous_at = self._previous_at
            self._previous = scrape
            self._previous_at = now
        if previous is None or previous_at is None:
            entry = self._entry(scrape, scrape, self.interval)
        else:
            entry = self._entry(scrape, previous, max(now - previous_at, 1e-9))
        with self._lock:
            self._entries.append(entry)
        return entry

    def _entry(self, current: _Scrape, previous: _Scrape,
               elapsed: float) -> Dict[str, Any]:
        latency_family = next(
            (name for name in _LATENCY_FAMILIES
             if any(key[0] == f"{name}_count" for key in current)), None)
        queries = _delta(current, previous, "repro_queries_total")
        if queries == 0.0 and latency_family is not None:
            # Shards have no query counter; executed scans stand in.
            queries = _delta(current, previous, f"{latency_family}_count")

        entry: Dict[str, Any] = {
            "ts": time.time(),
            "elapsed_seconds": elapsed,
            "queries": queries,
            "qps": queries / elapsed,
            "p50_ms": None,
            "p99_ms": None,
            "cache_hit_rate": None,
            "queue_wait_ms": None,
            "fan_out": None,
            "distance_computations": _delta(
                current, previous, "repro_query_cost_total",
                {"counter": "distance_computations"}),
        }

        if latency_family is not None:
            deltas = _bucket_deltas(current, previous, latency_family)
            p50 = _quantile(deltas, 0.50)
            p99 = _quantile(deltas, 0.99)
            entry["p50_ms"] = p50 * 1000.0 if p50 is not None else None
            entry["p99_ms"] = p99 * 1000.0 if p99 is not None else None

        hits = _delta(current, previous, "repro_cache_hits_total")
        misses = _delta(current, previous, "repro_cache_misses_total")
        if hits + misses > 0:
            entry["cache_hit_rate"] = hits / (hits + misses)

        wait_sum = _delta(current, previous, "repro_queue_wait_seconds_sum")
        wait_count = _delta(current, previous, "repro_queue_wait_seconds_count")
        if wait_count > 0:
            entry["queue_wait_ms"] = wait_sum / wait_count * 1000.0

        scatters = _delta(current, previous, "repro_scatter_queries_total")
        scans = _delta(current, previous, "repro_shard_scans_total")
        if scatters > 0:
            entry["fan_out"] = scans / scatters
        return entry

    # -- reading ------------------------------------------------------------------------

    def entries(self) -> List[Dict[str, Any]]:
        """The recorded entries, oldest first (a copy)."""
        with self._lock:
            return [dict(entry) for entry in self._entries]

    def payload(self) -> Dict[str, Any]:
        """The ``GET /v1/history`` response body."""
        return {
            "interval_seconds": self.interval,
            "capacity": self.capacity,
            "entries": self.entries(),
        }

    def __repr__(self) -> str:
        with self._lock:
            count = len(self._entries)
        return (f"MetricsHistory(interval={self.interval}, "
                f"capacity={self.capacity}, entries={count})")
