"""Tests for the LRU + TTL result cache and its generation-based invalidation."""

import pytest

from repro.errors import QueryError
from repro.service import ResultCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get(("a",), generation=1) is None
        cache.put(("a",), [1, 2, 3], generation=1)
        assert cache.get(("a",), generation=1) == [1, 2, 3]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(QueryError):
            ResultCache(capacity=0)
        with pytest.raises(QueryError):
            ResultCache(ttl=-1.0)

    def test_clear_keeps_counters(self):
        cache = ResultCache(capacity=4)
        cache.put(("a",), 1, generation=0)
        cache.get(("a",), generation=0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1


class TestLru:
    def test_capacity_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put(("a",), 1, generation=0)
        cache.put(("b",), 2, generation=0)
        cache.get(("a",), generation=0)   # refresh "a"
        cache.put(("c",), 3, generation=0)  # evicts "b"
        assert cache.get(("b",), generation=0) is None
        assert cache.get(("a",), generation=0) == 1
        assert cache.get(("c",), generation=0) == 3
        assert cache.stats.evictions == 1


class TestTtl:
    def test_entries_expire(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl=10.0, clock=clock)
        cache.put(("a",), 1, generation=0)
        clock.advance(9.9)
        assert cache.get(("a",), generation=0) == 1
        clock.advance(0.2)
        assert cache.get(("a",), generation=0) is None
        assert cache.stats.expirations == 1

    def test_no_ttl_means_no_expiry(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, clock=clock)
        cache.put(("a",), 1, generation=0)
        clock.advance(1e9)
        assert cache.get(("a",), generation=0) == 1


class TestGenerationInvalidation:
    def test_stale_generation_is_a_miss(self):
        cache = ResultCache(capacity=4)
        cache.put(("a",), "old", generation=1)
        assert cache.get(("a",), generation=2) is None
        assert cache.stats.invalidations == 1
        # the stale entry is gone, a fresh one can be stored
        cache.put(("a",), "new", generation=2)
        assert cache.get(("a",), generation=2) == "new"

    def test_current_generation_still_hits(self):
        cache = ResultCache(capacity=4)
        cache.put(("a",), "value", generation=7)
        assert cache.get(("a",), generation=7) == "value"
        assert cache.stats.invalidations == 0
