"""Vectorized leaf-scan kernels.

Every search in the codebase bottoms out in the same operation: compare a
query point against a *bucket* of stored points — a KD-tree leaf, a
distributed partition's leaf, the live-ingest delta segment, or the whole
corpus in the linear-scan baseline.  The scalar implementation walks the
bucket one point at a time (one ``math.dist`` call and one heap offer per
point); this module batches the whole bucket into a contiguous NumPy matrix
and computes every distance in a single vectorized pass.

Exactness
---------
The NumPy kernels are *pruned* but **exact**: they return the same points
with the same ``math.dist`` distances as the scalar path.

* The vectorized pass computes **squared** distances only, and uses them
  only to *prune* (compare against the squared radius, with a relative
  slack so a float rounding can never drop a true hit) and to *select*
  (stable top-k, so ties keep bucket order).  No ``np.sqrt`` is ever taken.
* Every retained point's distance is then recomputed with
  :func:`~repro.core.point.euclidean_distance` (``math.dist``) and
  re-checked by the exact acceptance rule (`ResultSet.offer`'s strict ``<``
  for k-NN, the inclusive ``<=`` for range).  Over-inclusion by the slack is
  harmless; reported distances are bit-identical to the scalar path.
* Survivors are offered in bucket order, exactly like the scalar loop, and
  :class:`~repro.core.knn.ResultSet` retains the first offer among equal
  distances, so tie-breaking matches the scalar path too.

(The single residual gap: two *distinct* points whose true distances differ
by a last-ulp amount can compare equal — or swapped — on squared distances,
which could select the other one at a k-boundary.  That changes which of two
near-identical answers is returned, never the distances by more than 1 ulp.)

The scalar path stays alive behind ``SemTreeConfig.scan_kernel = "scalar"``
as the correctness oracle; ``tests/core/test_kernels.py`` asserts the two
kernels agree across bucket sizes, dimensionalities, duplicate-coordinate
buckets and the ingest tree ∪ delta merge path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.knn import Neighbour
from repro.core.point import euclidean_distance
from repro.errors import IndexError_

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.cost import SearchCost
    from repro.core.knn import KSearchState
    from repro.core.node import Node
    from repro.core.point import LabeledPoint

__all__ = [
    "SCAN_KERNELS",
    "DEFAULT_SCAN_KERNEL",
    "validate_scan_kernel",
    "coordinate_matrix",
    "squared_distances",
    "knn_scan_node",
    "range_scan_points",
    "range_scan_node",
    "linear_knn",
    "linear_range",
]

#: The recognised values of ``SemTreeConfig.scan_kernel``.
SCAN_KERNELS: Tuple[str, ...] = ("numpy", "scalar")

#: Kernel used when nothing is configured.
DEFAULT_SCAN_KERNEL = "numpy"

#: Buckets smaller than these fall back to the scalar loop even under the
#: ``"numpy"`` kernel: a NumPy pass costs a few microseconds of fixed
#: dispatch overhead, which a handful of ``math.dist`` calls undercuts.  The
#: k-NN scan amortises earlier because vectorization also caps the heap
#: offers at ``k`` (top-k preselection); a range scan saves only the
#: distance arithmetic, so it needs a bigger bucket to win.
KNN_VECTOR_MIN = 8
RANGE_VECTOR_MIN = 32

#: Relative slack applied to squared-radius pre-filters.  The vectorized
#: squared distance and the scalar ``math.dist`` can disagree by a few ulps;
#: the slack keeps the pre-filter a strict superset of the scalar hits, and
#: every survivor is re-checked with its exact distance afterwards.
_PREFILTER_SLACK = 1.0 + 1e-12


def validate_scan_kernel(name: str) -> str:
    """Return ``name`` when it is a known kernel; raise otherwise."""
    if name not in SCAN_KERNELS:
        raise IndexError_(
            f"unknown scan kernel {name!r}; expected one of {list(SCAN_KERNELS)}"
        )
    return name


def coordinate_matrix(points: Sequence["LabeledPoint"]) -> np.ndarray:
    """Stack a bucket's coordinates into one contiguous ``(n, d)`` float matrix."""
    return np.array([point.coordinates for point in points], dtype=np.float64)


def squared_distances(matrix: np.ndarray, query_coords: Sequence[float]) -> np.ndarray:
    """Squared Euclidean distance from every matrix row to the query point.

    Raises the library's :class:`IndexError_` on a dimension mismatch, like
    the scalar :func:`~repro.core.point.euclidean_distance` does — callers
    must never see a raw NumPy broadcast error.
    """
    if not isinstance(query_coords, np.ndarray):
        query_coords = np.asarray(query_coords, dtype=np.float64)
    if matrix.shape[1] != query_coords.shape[0]:
        raise IndexError_(
            f"dimension mismatch: {matrix.shape[1]} vs {query_coords.shape[0]}"
        )
    diff = matrix - query_coords
    return np.einsum("ij,ij->i", diff, diff)


# -- k-NN -------------------------------------------------------------------------------


def knn_scan_node(state: "KSearchState", node: "Node", kernel: str) -> int:
    """Examine one leaf's bucket for a k-NN search; returns how many were retained.

    The ``"scalar"`` kernel defers to :meth:`KSearchState.examine_bucket`
    (the per-point oracle); the ``"numpy"`` kernel batches the bucket through
    the node's cached coordinate matrix.  Buckets below the vectorization
    cutoff skip the matrix build entirely.
    """
    if kernel == "scalar" or len(node.bucket) < KNN_VECTOR_MIN:
        return state.examine_bucket(node.bucket)
    return knn_scan_points(state, node.bucket, node.bucket_matrix())


def knn_scan_points(state: "KSearchState", points: Sequence["LabeledPoint"],
                    matrix: Optional[np.ndarray] = None) -> int:
    """Vectorized k-NN bucket scan: one distance pass, heap offers only for winners.

    All bucket squared distances are computed in one shot, then two exact
    pruning steps bound the Python-level work:

    1. *radius pre-filter* — candidates are compared against the current
       radius on squared distances (a safe superset, see the module
       docstring);
    2. *top-k preselection* — among the survivors only the ``k`` closest
       (stable sort, so ties keep bucket order) are offered to the heap.  A
       bucket point outside its own bucket's top-``k`` loses every comparison
       and tie-break against those ``k`` offered points, so it can never be
       part of the final result set — skipping it changes nothing.

    The at-most-``k`` winners get their exact ``math.dist`` distance and are
    offered in bucket order; the ``points_examined`` counter is bulk-updated.
    Returns the number of offers the result set accepted.
    """
    n = len(points)
    if n == 0:
        return 0
    if n < KNN_VECTOR_MIN:
        return state.examine_bucket(points)
    if matrix is None:
        matrix = coordinate_matrix(points)
    sq = squared_distances(matrix, state.query_array())
    state.points_examined += n
    cost = state.cost
    cost.kernel_batches += 1
    cost.buckets_scanned += 1
    cost.squared_distance_rows += n
    radius = state.results.current_radius
    if radius != float("inf"):
        mask = sq <= radius * radius * _PREFILTER_SLACK
        # Backward visits mostly find nothing; count before allocating the
        # index array so the no-survivor case exits after one scan.
        survivors = int(np.count_nonzero(mask))
        cost.pruned_by_radius += n - survivors
        if not survivors:
            return 0
        candidates = np.nonzero(mask)[0]
        candidate_sq = sq[candidates]
    else:
        candidates = None
        candidate_sq = sq
    k = state.results.k
    if candidate_sq.size > k:
        # Stable: among equal squared distances the lower bucket index wins,
        # exactly like the scalar loop's first-come-first-retained behaviour.
        top = np.argsort(candidate_sq, kind="stable")[:k]
        top.sort()  # back to bucket order for the offers
        candidates = top if candidates is None else candidates[top]
    indices = range(n) if candidates is None else candidates.tolist()
    query = state.query
    retained = 0
    offer = state.results.offer
    for index in indices:
        point = points[index]
        cost.distance_computations += 1
        if offer(point, euclidean_distance(query, point)):
            retained += 1
    return retained


# -- range ------------------------------------------------------------------------------


def range_scan_node(query: "LabeledPoint", radius: float, node: "Node",
                    kernel: str,
                    query_array: Optional[np.ndarray] = None,
                    cost: Optional["SearchCost"] = None,
                    ) -> Tuple[List["Neighbour"], int]:
    """Scan one leaf's bucket for a range search.

    Returns ``(neighbours_within_radius, points_examined)``; neighbours keep
    bucket order (the caller sorts by distance at the end, so ties preserve
    insertion order exactly like the scalar path).  ``query_array`` lets a
    traversal convert the query coordinates once and reuse them per leaf;
    buckets below the vectorization cutoff skip the matrix build entirely.
    ``cost``, when given, accumulates the scan's work counters.
    """
    if kernel == "scalar" or len(node.bucket) < RANGE_VECTOR_MIN:
        return _range_scan_scalar(query, radius, node.bucket, cost=cost)
    return range_scan_points(query, radius, node.bucket, node.bucket_matrix(),
                             query_array=query_array, cost=cost)


def _range_scan_scalar(query: "LabeledPoint", radius: float,
                       points: Sequence["LabeledPoint"],
                       cost: Optional["SearchCost"] = None,
                       ) -> Tuple[List[Neighbour], int]:
    if cost is not None:
        cost.buckets_scanned += 1
        cost.scalar_fallbacks += 1
        cost.distance_computations += len(points)
    found: List[Neighbour] = []
    for point in points:
        distance = euclidean_distance(query, point)
        if distance <= radius:
            found.append(Neighbour(point, distance))
    return found, len(points)


def range_scan_points(query: "LabeledPoint", radius: float,
                      points: Sequence["LabeledPoint"],
                      matrix: Optional[np.ndarray] = None,
                      query_array: Optional[np.ndarray] = None,
                      cost: Optional["SearchCost"] = None,
                      ) -> Tuple[List[Neighbour], int]:
    """Vectorized range bucket scan (inclusive ``distance <= radius`` rule)."""
    n = len(points)
    if n == 0:
        return [], 0
    if n < RANGE_VECTOR_MIN:
        return _range_scan_scalar(query, radius, points, cost=cost)
    if matrix is None:
        matrix = coordinate_matrix(points)
    if query_array is None:
        query_array = np.asarray(query.coordinates, dtype=np.float64)
    sq = squared_distances(matrix, query_array)
    mask = sq <= radius * radius * _PREFILTER_SLACK
    # Most leaves of a selective range query hold no hits at all; count
    # before allocating the index array so that case exits after one scan.
    survivors = int(np.count_nonzero(mask))
    if cost is not None:
        cost.kernel_batches += 1
        cost.buckets_scanned += 1
        cost.squared_distance_rows += n
        cost.pruned_by_radius += n - survivors
        cost.distance_computations += survivors
    if not survivors:
        return [], n
    found = []
    for index in np.nonzero(mask)[0].tolist():
        point = points[index]
        # The slacked squared pre-filter may over-include; the exact
        # ``math.dist`` distance decides, keeping the inclusive rule and the
        # reported values identical to the scalar path.
        distance = euclidean_distance(query, point)
        if distance <= radius:
            found.append(Neighbour(point, distance))
    return found, n


# -- whole-corpus scans (linear baseline, delta segment) --------------------------------


def linear_knn(points: Sequence["LabeledPoint"], query: "LabeledPoint", k: int,
               matrix: Optional[np.ndarray] = None,
               kernel: str = DEFAULT_SCAN_KERNEL) -> List[Neighbour]:
    """Exact k-NN over a full point set, closest first.

    Under the ``"numpy"`` kernel this is a single matrix pass: the stable
    argsort on squared distances reproduces the scalar tie order (insertion
    order among equal distances) and the winners' reported distances are the
    exact ``math.dist`` values.  ``kernel="scalar"`` (or a set below the
    vectorization cutoff) runs the per-point oracle loop.
    """
    n = len(points)
    if n == 0:
        return []
    if kernel == "scalar" or n < KNN_VECTOR_MIN:
        scored = [Neighbour(point, euclidean_distance(query, point)) for point in points]
        scored.sort(key=lambda neighbour: neighbour.distance)
        return scored[:k]
    if matrix is None:
        matrix = coordinate_matrix(points)
    sq = squared_distances(matrix, np.asarray(query.coordinates, dtype=np.float64))
    if n > k:
        top = np.argsort(sq, kind="stable")[:k]
        top.sort()  # insertion order, so the final stable sort keeps ties right
        indices = top.tolist()
    else:
        indices = range(n)
    found = [Neighbour(points[index], euclidean_distance(query, points[index]))
             for index in indices]
    found.sort(key=lambda neighbour: neighbour.distance)
    return found


def linear_range(points: Sequence["LabeledPoint"], query: "LabeledPoint", radius: float,
                 matrix: Optional[np.ndarray] = None,
                 kernel: str = DEFAULT_SCAN_KERNEL) -> List[Neighbour]:
    """Exact range query over a full point set, closest first.

    Results come back sorted by distance (stable, so ties keep insertion
    order), identical under both kernels.
    """
    if kernel == "scalar":
        found, _ = _range_scan_scalar(query, radius, points)
    else:
        found, _ = range_scan_points(query, radius, points, matrix)
    found.sort(key=lambda neighbour: neighbour.distance)
    return found
