"""Oracle equivalence of the vectorized scan kernels.

``scan_kernel="scalar"`` is the per-point correctness oracle;
``scan_kernel="numpy"`` must return tie-insensitive-identical results for
k-NN and range queries across bucket sizes, dimensionalities,
duplicate-coordinate buckets, the distributed tree, the linear-scan
baseline, the delta segment, and the ingest tree ∪ delta merged-read path.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.core import kernels
from repro.core.config import SemTreeConfig
from repro.core.distributed import DistributedSemTree
from repro.core.kdtree import KDTree
from repro.core.knn import KSearchState
from repro.core.node import Node
from repro.core.point import LabeledPoint, squared_euclidean_distance
from repro.baselines.linear_scan import LinearScanIndex
from repro.errors import IndexError_
from repro.ingest.delta import DeltaIndex
from repro.ingest.ingesting import IngestingIndex
from repro.core.semtree import SemTreeIndex
from repro.requirements import (build_requirement_distance,
                                build_requirement_vocabularies)

BUCKET_SIZES = [1, 4, 16, 64]
DIMS = [2, 8, 16]
N_POINTS = 256
K = 7


def _random_points(count, dim, seed=3, duplicates=False):
    rng = random.Random(seed)
    points = []
    for index in range(count):
        if duplicates and index % 3 == 0 and points:
            # Re-issue an earlier coordinate vector under a fresh label so
            # buckets hold exact-duplicate coordinates (distance ties).
            donor = points[rng.randrange(len(points))]
            points.append(LabeledPoint(donor.coordinates, label=index))
        else:
            points.append(LabeledPoint.of(
                [rng.random() for _ in range(dim)], label=index))
    return points


def _queries(dim, count=6, seed=17):
    rng = random.Random(seed)
    return [LabeledPoint.of([rng.random() for _ in range(dim)]) for _ in range(count)]


def _knn_key(neighbours):
    return sorted((round(n.distance, 9), n.point.label) for n in neighbours)


def _range_key(neighbours):
    return sorted((round(n.distance, 9), n.point.label) for n in neighbours)


@pytest.mark.parametrize("bucket_size", BUCKET_SIZES)
@pytest.mark.parametrize("dim", DIMS)
@pytest.mark.parametrize("duplicates", [False, True])
def test_kdtree_kernels_equivalent(bucket_size, dim, duplicates):
    points = _random_points(N_POINTS, dim, duplicates=duplicates)
    scalar_tree = KDTree.build_balanced(points, bucket_size=bucket_size,
                                        scan_kernel="scalar")
    numpy_tree = KDTree.build_balanced(points, bucket_size=bucket_size,
                                       scan_kernel="numpy")
    for query in _queries(dim):
        scalar_knn = scalar_tree.k_nearest(query, K)
        numpy_knn = numpy_tree.k_nearest(query, K)
        assert _knn_key(scalar_knn) == _knn_key(numpy_knn)
        for radius in (0.05, 0.3, 1.0):
            scalar_range, scalar_visited = scalar_tree.range_query_state(query, radius)
            numpy_range, numpy_visited = numpy_tree.range_query_state(query, radius)
            assert _range_key(scalar_range) == _range_key(numpy_range)
            # The kernel changes how leaves are scanned, never which nodes
            # are visited.
            assert scalar_visited == numpy_visited


@pytest.mark.parametrize("bucket_size", [4, 16])
def test_kdtree_kernels_equivalent_under_dynamic_insertion(bucket_size):
    """Insert-driven trees (splits, matrix invalidation) agree too."""
    points = _random_points(N_POINTS, 8, duplicates=True)
    scalar_tree = KDTree(8, bucket_size=bucket_size, scan_kernel="scalar")
    numpy_tree = KDTree(8, bucket_size=bucket_size, scan_kernel="numpy")
    for index, point in enumerate(points):
        scalar_tree.insert(point)
        numpy_tree.insert(point)
        if index % 64 == 0:
            for query in _queries(8, count=2):
                assert _knn_key(scalar_tree.k_nearest(query, 3)) == \
                    _knn_key(numpy_tree.k_nearest(query, 3))
    for query in _queries(8):
        assert _knn_key(scalar_tree.k_nearest(query, K)) == \
            _knn_key(numpy_tree.k_nearest(query, K))
        assert _range_key(scalar_tree.range_query(query, 0.4)) == \
            _range_key(numpy_tree.range_query(query, 0.4))


def test_kdtree_counters_match_between_kernels():
    points = _random_points(N_POINTS, 8)
    scalar_tree = KDTree.build_balanced(points, bucket_size=16, scan_kernel="scalar")
    numpy_tree = KDTree.build_balanced(points, bucket_size=16, scan_kernel="numpy")
    for query in _queries(8):
        scalar_state = scalar_tree.k_nearest_state(query, K)
        numpy_state = numpy_tree.k_nearest_state(query, K)
        assert scalar_state.points_examined == numpy_state.points_examined
        assert scalar_state.nodes_visited == numpy_state.nodes_visited


@pytest.mark.parametrize("dim", [2, 8])
def test_distributed_kernels_equivalent(dim):
    points = _random_points(200, dim, duplicates=True)
    queries = _queries(dim)
    results = {}
    for kernel in ("scalar", "numpy"):
        config = SemTreeConfig(dimensions=dim, bucket_size=8, max_partitions=4,
                               partition_capacity=48, scan_kernel=kernel)
        tree = DistributedSemTree(config)
        tree.insert_all(points)
        assert tree.partition_count > 1  # the partition scans actually run
        results[kernel] = [
            (_knn_key(tree.k_nearest(query, K)),
             _range_key(tree.range_query(query, 0.35)))
            for query in queries
        ]
    assert results["scalar"] == results["numpy"]


@pytest.mark.parametrize("duplicates", [False, True])
def test_linear_scan_kernels_equivalent(duplicates):
    points = _random_points(N_POINTS, 8, duplicates=duplicates)
    scalar_index = LinearScanIndex(points, scan_kernel="scalar")
    numpy_index = LinearScanIndex(points, scan_kernel="numpy")
    for query in _queries(8):
        assert _knn_key(scalar_index.k_nearest(query, K)) == \
            _knn_key(numpy_index.k_nearest(query, K))
        assert _range_key(scalar_index.range_query(query, 0.4)) == \
            _range_key(numpy_index.range_query(query, 0.4))
    # Ties must also resolve identically (stable, insertion order).
    if duplicates:
        for query in _queries(8, count=2, seed=5):
            scalar_labels = [n.point.label for n in scalar_index.k_nearest(query, K)]
            numpy_labels = [n.point.label for n in numpy_index.k_nearest(query, K)]
            assert scalar_labels == numpy_labels


def test_delta_index_kernels_equivalent():
    points = _random_points(96, 8, duplicates=True)
    scalar_delta = DeltaIndex(scan_kernel="scalar")
    numpy_delta = DeltaIndex(scan_kernel="numpy")
    for seq, point in enumerate(points, start=1):
        scalar_delta.add(point, seq)
        numpy_delta.add(point, seq)
    for query in _queries(8):
        assert _knn_key(scalar_delta.all_neighbours(query)) == \
            _knn_key(numpy_delta.all_neighbours(query))
        assert _knn_key(scalar_delta.k_nearest(query, K)) == \
            _knn_key(numpy_delta.k_nearest(query, K))
        assert _range_key(scalar_delta.neighbours_within(query, 0.4)) == \
            _range_key(numpy_delta.neighbours_within(query, 0.4))


def _built_ingesting_index(small_corpus, kernel, wal_path):
    vocabularies = build_requirement_vocabularies(
        small_corpus.actor_names, small_corpus.parameter_values
    )
    distance = build_requirement_distance(vocabularies)
    triples = list(dict.fromkeys(small_corpus.all_triples()))
    base_triples, stream = triples[:-24], triples[-24:]
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=4, bucket_size=8, max_partitions=3, partition_capacity=64,
        scan_kernel=kernel,
    ))
    index.add_triples(base_triples)
    index.build()
    ingesting = IngestingIndex(index, wal_path, compaction_threshold=1000)
    ingesting.insert_many(stream)
    return ingesting, stream


def test_ingest_merged_read_kernels_equivalent(small_corpus, tmp_path):
    """The tree ∪ delta merge path answers identically under both kernels."""
    scalar_index, stream = _built_ingesting_index(
        small_corpus, "scalar", tmp_path / "scalar.jsonl")
    numpy_index, _ = _built_ingesting_index(
        small_corpus, "numpy", tmp_path / "numpy.jsonl")
    assert len(scalar_index.delta) == len(stream)
    assert numpy_index.delta.scan_kernel == "numpy"
    queries = stream[:6]
    for query in queries:
        scalar_knn = [(round(m.distance, 9), str(m.triple))
                      for m in scalar_index.k_nearest(query, 5)]
        numpy_knn = [(round(m.distance, 9), str(m.triple))
                     for m in numpy_index.k_nearest(query, 5)]
        assert sorted(scalar_knn) == sorted(numpy_knn)
        scalar_range = [(round(m.distance, 9), str(m.triple))
                        for m in scalar_index.range_query(query, 0.5)]
        numpy_range = [(round(m.distance, 9), str(m.triple))
                       for m in numpy_index.range_query(query, 0.5)]
        assert sorted(scalar_range) == sorted(numpy_range)
    scalar_index.close()
    numpy_index.close()


# -- kernel internals -------------------------------------------------------------------


def test_topk_preselection_matches_full_offers():
    """Offering only a bucket's stable top-k equals offering every point."""
    points = _random_points(64, 8, duplicates=True)
    query = _queries(8, count=1)[0]
    full = KSearchState(query=query, k=5)
    full.examine_bucket(points)
    pruned = KSearchState(query=query, k=5)
    kernels.knn_scan_points(pruned, points)
    assert _knn_key(full.results.neighbours()) == _knn_key(pruned.results.neighbours())
    assert [n.point.label for n in full.results.neighbours()] == \
        [n.point.label for n in pruned.results.neighbours()]


def test_knn_scan_prefilters_against_current_radius():
    """With a full result set, far-away buckets add nothing and stay exact."""
    near = [LabeledPoint.of([0.0, float(i) / 100], label=f"near{i}") for i in range(8)]
    far = [LabeledPoint.of([50.0 + i, 0.0], label=f"far{i}") for i in range(32)]
    query = LabeledPoint.of([0.0, 0.0])
    state = KSearchState(query=query, k=4)
    kernels.knn_scan_points(state, near)
    before = _knn_key(state.results.neighbours())
    retained = kernels.knn_scan_points(state, far)
    assert retained == 0
    assert state.points_examined == len(near) + len(far)
    assert _knn_key(state.results.neighbours()) == before


def test_bucket_matrix_cache_invalidation():
    node = Node(bucket=[LabeledPoint.of([0.0, 0.0], label=0)])
    first = node.bucket_matrix()
    assert first.shape == (1, 2)
    assert node.bucket_matrix() is first  # cached
    node.add_to_bucket(LabeledPoint.of([1.0, 1.0], label=1))
    second = node.bucket_matrix()
    assert second.shape == (2, 2)
    assert node.remove_from_bucket(LabeledPoint.of([0.0, 0.0], label=0))
    assert node.bucket_matrix().shape == (1, 2)
    assert not node.remove_from_bucket(LabeledPoint.of([9.0, 9.0], label=9))
    node.set_bucket([LabeledPoint.of([2.0, 2.0], label=2)])
    assert np.allclose(node.bucket_matrix(), [[2.0, 2.0]])
    node.convert_to_routing(0, 0.5, Node(), Node())
    assert node._matrix is None


def test_scan_kernel_validation():
    with pytest.raises(IndexError_):
        SemTreeConfig(scan_kernel="fortran")
    with pytest.raises(IndexError_):
        KDTree(2, scan_kernel="fortran")
    with pytest.raises(IndexError_):
        DeltaIndex(scan_kernel="fortran")
    with pytest.raises(IndexError_):
        LinearScanIndex(scan_kernel="fortran")
    assert SemTreeConfig().scan_kernel == kernels.DEFAULT_SCAN_KERNEL
    assert SemTreeConfig(scan_kernel="scalar").with_updates(bucket_size=4).scan_kernel \
        == "scalar"


def test_scan_kernel_survives_snapshot_round_trip(small_corpus, tmp_path):
    from repro.service.snapshot import load_index, save_index

    vocabularies = build_requirement_vocabularies(
        small_corpus.actor_names, small_corpus.parameter_values
    )
    distance = build_requirement_distance(vocabularies)
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=4, bucket_size=8, scan_kernel="scalar",
    ))
    index.add_triples(list(dict.fromkeys(small_corpus.all_triples()))[:32])
    index.build()
    save_index(index, tmp_path / "snap.json")
    warm = load_index(tmp_path / "snap.json", distance)
    assert warm.config.scan_kernel == "scalar"


def test_linear_scan_numpy_dimension_mismatch_raises_library_error():
    index = LinearScanIndex(_random_points(32, 2), scan_kernel="numpy")
    bad_query = LabeledPoint.of([0.1, 0.2, 0.3])
    with pytest.raises(IndexError_):
        index.k_nearest(bad_query, 3)
    with pytest.raises(IndexError_):
        index.range_query(bad_query, 0.5)


def test_delta_numpy_dimension_mismatch_raises_library_error():
    delta = DeltaIndex(scan_kernel="numpy")
    for seq, point in enumerate(_random_points(32, 2), start=1):
        delta.add(point, seq)
    bad_query = LabeledPoint.of([0.1, 0.2, 0.3])
    with pytest.raises(IndexError_):
        delta.k_nearest(bad_query, 3)
    with pytest.raises(IndexError_):
        delta.neighbours_within(bad_query, 0.5)


def test_sequential_baseline_builders_inherit_scan_kernel():
    from repro.baselines.sequential_adapter import SequentialKDTreeBaseline

    points = _random_points(64, 2)
    config = SemTreeConfig(dimensions=2, bucket_size=8, scan_kernel="scalar")
    assert SequentialKDTreeBaseline.balanced(points, config).tree.scan_kernel == "scalar"
    assert SequentialKDTreeBaseline.unbalanced_chain(points, config).tree.scan_kernel \
        == "scalar"
    assert SequentialKDTreeBaseline.by_dynamic_insertion(points, config).tree.scan_kernel \
        == "scalar"


def test_squared_distance_computed_without_sqrt():
    rng = random.Random(1)
    for dim in (1, 2, 8, 16):
        a = [rng.uniform(-5, 5) for _ in range(dim)]
        b = [rng.uniform(-5, 5) for _ in range(dim)]
        direct = squared_euclidean_distance(a, b)
        assert direct == pytest.approx(math.dist(a, b) ** 2, rel=1e-12)
    # Exactly representable inputs give the exact squared sum (no sqrt
    # round-trip in the middle).
    assert squared_euclidean_distance([0.0, 3.0], [4.0, 0.0]) == 25.0
    with pytest.raises(IndexError_):
        squared_euclidean_distance([1.0], [1.0, 2.0])


def test_note_partition_preserves_first_seen_order():
    state = KSearchState(query=LabeledPoint.of([0.0]), k=1)
    for partition_id in ("P2", "P0", "P2", "P1", "P0", "P2"):
        state.note_partition(partition_id)
    assert state.visited_partition_ids == ["P2", "P0", "P1"]
