"""The requirements-engineering data model.

A *requirement* is one section of a requirements document: an identifier,
the natural-language statement(s) and — once processed — the set of triples
representing its semantics.  A *requirements document* groups requirements,
mirroring the paper's corpus of "several hundreds of documents" about
on-board software.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

from repro.errors import TripleError
from repro.rdf.document import Document, DocumentCollection
from repro.rdf.triple import Triple

__all__ = ["Requirement", "RequirementsDocument", "collection_from_documents"]


@dataclass
class Requirement:
    """One software requirement: identifier, sentences, and extracted triples."""

    requirement_id: str
    sentences: List[str] = field(default_factory=list)
    triples: List[Triple] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.requirement_id:
            raise TripleError("a Requirement needs a non-empty identifier")

    @property
    def text(self) -> str:
        """The full natural-language statement of the requirement."""
        return " ".join(self.sentences)

    def __len__(self) -> int:
        return len(self.triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self.triples)

    def __repr__(self) -> str:
        return f"Requirement(id={self.requirement_id!r}, triples={len(self.triples)})"


@dataclass
class RequirementsDocument:
    """A requirements document: an identifier and an ordered list of requirements."""

    document_id: str
    requirements: List[Requirement] = field(default_factory=list)
    title: str = ""

    def __post_init__(self) -> None:
        if not self.document_id:
            raise TripleError("a RequirementsDocument needs a non-empty identifier")

    def add(self, requirement: Requirement) -> None:
        """Append a requirement to the document."""
        self.requirements.append(requirement)

    def all_triples(self) -> List[Triple]:
        """Every triple of every requirement, in document order."""
        return [triple for requirement in self.requirements for triple in requirement]

    def requirement(self, requirement_id: str) -> Requirement:
        """Look a requirement up by identifier.

        Raises
        ------
        KeyError
            If the identifier is unknown.
        """
        for requirement in self.requirements:
            if requirement.requirement_id == requirement_id:
                return requirement
        raise KeyError(requirement_id)

    def to_rdf_document(self) -> Document:
        """Convert to the generic :class:`~repro.rdf.document.Document` model."""
        text = "\n".join(requirement.text for requirement in self.requirements)
        return Document(
            document_id=self.document_id,
            triples=self.all_triples(),
            text=text,
            metadata={"title": self.title, "requirements": str(len(self.requirements))},
        )

    def __len__(self) -> int:
        return len(self.requirements)

    def __iter__(self) -> Iterator[Requirement]:
        return iter(self.requirements)

    def __repr__(self) -> str:
        return (
            f"RequirementsDocument(id={self.document_id!r}, "
            f"requirements={len(self.requirements)}, triples={len(self.all_triples())})"
        )


def collection_from_documents(documents: List[RequirementsDocument]) -> DocumentCollection:
    """Convert a list of requirements documents into a generic document collection."""
    return DocumentCollection(document.to_rdf_document() for document in documents)
