"""Tests for labeled points and Euclidean distances."""


import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import LabeledPoint, euclidean_distance, squared_euclidean_distance
from repro.errors import IndexError_

coords = st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                  min_size=1, max_size=5)


class TestLabeledPoint:
    def test_of_accepts_any_iterable(self):
        point = LabeledPoint.of(np.array([1.0, 2.0]), label="x")
        assert point.coordinates == (1.0, 2.0)
        assert point.label == "x"

    def test_coordinates_are_floats(self):
        assert LabeledPoint.of([1, 2]).coordinates == (1.0, 2.0)

    def test_empty_coordinates_rejected(self):
        with pytest.raises(IndexError_):
            LabeledPoint(())

    def test_dimension_and_indexing(self):
        point = LabeledPoint.of([3.0, 4.0, 5.0])
        assert point.dimensions == 3
        assert point[1] == 4.0

    def test_as_array_is_a_copy(self):
        point = LabeledPoint.of([1.0, 2.0])
        array = point.as_array()
        array[0] = 99.0
        assert point[0] == 1.0

    def test_hashable_and_value_equality(self):
        assert LabeledPoint.of([1, 2], "a") == LabeledPoint.of([1.0, 2.0], "a")
        assert len({LabeledPoint.of([1, 2], "a"), LabeledPoint.of([1, 2], "a")}) == 1

    def test_points_with_different_labels_are_different(self):
        assert LabeledPoint.of([1, 2], "a") != LabeledPoint.of([1, 2], "b")


class TestDistances:
    def test_known_distance(self):
        assert euclidean_distance(LabeledPoint.of([0, 0]), LabeledPoint.of([3, 4])) == 5.0
        assert squared_euclidean_distance([0, 0], [3, 4]) == 25.0

    def test_accepts_raw_sequences(self):
        assert euclidean_distance([1.0, 1.0], [1.0, 1.0]) == 0.0

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(IndexError_):
            euclidean_distance([1.0], [1.0, 2.0])

    @given(coords, coords)
    def test_symmetry_and_nonnegativity(self, a, b):
        if len(a) != len(b):
            b = (b * len(a))[:len(a)]
        assert euclidean_distance(a, b) >= 0.0
        assert euclidean_distance(a, b) == pytest.approx(euclidean_distance(b, a))

    @given(coords)
    def test_identity(self, a):
        assert euclidean_distance(a, a) == 0.0

    def test_distance_to_method(self):
        assert LabeledPoint.of([0, 0]).distance_to(LabeledPoint.of([0, 2])) == 2.0
