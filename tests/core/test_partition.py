"""Tests for SemTree partitions (structure, capacity, edge/internal nodes)."""

import pytest

from repro.core import (
    CapacityPolicy,
    DistributedSemTree,
    LabeledPoint,
    Node,
    Partition,
    RemoteChild,
    SemTreeConfig,
)
from repro.errors import PartitionError


@pytest.fixture
def tree():
    config = SemTreeConfig(dimensions=2, bucket_size=4, max_partitions=4,
                           partition_capacity=16)
    return DistributedSemTree(config)


def build_subtree():
    """root(routing) -> left leaf [2 pts], right(routing) -> two leaves [1 pt each]."""
    left_leaf = Node(bucket=[LabeledPoint.of([0.1, 0.1]), LabeledPoint.of([0.2, 0.2])])
    right_inner = Node(split_index=1, split_value=0.5,
                       left=Node(bucket=[LabeledPoint.of([0.8, 0.2])]),
                       right=Node(bucket=[LabeledPoint.of([0.9, 0.9])]))
    return Node(split_index=0, split_value=0.5, left=left_leaf, right=right_inner)


class TestStructure:
    def test_requires_identifier(self, tree):
        with pytest.raises(PartitionError):
            Partition("", tree)

    def test_adopt_subtree_counts_points_and_tags_nodes(self, tree):
        partition = Partition("P7", tree, root=build_subtree())
        assert partition.point_count == 4
        assert all(node.partition_id == "P7" for node in partition.local_nodes())

    def test_local_leaves_and_nodes(self, tree):
        partition = Partition("P7", tree, root=build_subtree())
        assert len(list(partition.local_nodes())) == 5
        assert len(partition.local_leaves()) == 3

    def test_leaf_parents_excludes_partition_root(self, tree):
        single_leaf = Node(bucket=[LabeledPoint.of([0.5, 0.5])])
        partition = Partition("P7", tree, root=single_leaf)
        assert partition.leaf_parents() == []

    def test_leaf_parents_reports_side(self, tree):
        partition = Partition("P7", tree, root=build_subtree())
        sides = {(parent.node_id, side) for parent, side, _ in partition.leaf_parents()}
        assert len(sides) == 3

    def test_edge_and_internal_classification(self, tree):
        root = build_subtree()
        partition = Partition("P7", tree, root=root)
        # all-local routing nodes are internal, leaves are edge
        assert root in partition.internal_nodes()
        assert len(partition.edge_nodes()) == 3
        # replace a child with a remote pointer: the parent becomes an edge node
        root.right = RemoteChild("P9")
        assert root in partition.edge_nodes()
        assert partition.remote_children() == [RemoteChild("P9")]

    def test_routing_only_partition(self, tree):
        partition = Partition("P7", tree, root=build_subtree())
        partition.record_stored(-4)
        assert partition.is_routing_only

    def test_record_stored_cannot_go_negative(self, tree):
        partition = Partition("P7", tree, root=Node())
        with pytest.raises(PartitionError):
            partition.record_stored(-1)


class TestCapacityPolicies:
    def test_static_policy(self, tree):
        partition = Partition("P7", tree, root=build_subtree())
        config = SemTreeConfig(dimensions=2, bucket_size=2, partition_capacity=3)
        assert partition.is_saturated(config, node_capacity=None)
        config_large = SemTreeConfig(dimensions=2, bucket_size=2, partition_capacity=100)
        assert not partition.is_saturated(config_large, node_capacity=None)

    def test_node_fraction_policy(self, tree):
        partition = Partition("P7", tree, root=build_subtree())  # 4 points
        config = SemTreeConfig(dimensions=2, bucket_size=2, partition_capacity=100,
                               capacity_policy=CapacityPolicy.NODE_FRACTION,
                               node_capacity_fraction=0.5)
        assert partition.is_saturated(config, node_capacity=6)       # 4 > 3
        assert not partition.is_saturated(config, node_capacity=10)  # 4 <= 5

    def test_node_fraction_falls_back_to_static_without_capacity(self, tree):
        partition = Partition("P7", tree, root=build_subtree())
        config = SemTreeConfig(dimensions=2, bucket_size=2, partition_capacity=3,
                               capacity_policy=CapacityPolicy.NODE_FRACTION)
        assert partition.is_saturated(config, node_capacity=None)
