"""Per-replica health: circuit breakers, retry backoff, replica selection.

The coordinator's fault-tolerance primitives live here, transport-agnostic
so the failure-matrix tests can drive them with a fake clock:

* :class:`CircuitBreaker` — the classic three-state machine per replica.
  ``closed`` passes traffic and counts *consecutive* failures; at
  ``failure_threshold`` it trips ``open`` and sheds instantly (no connect
  timeouts against a dead host on the query path); after
  ``reset_timeout`` seconds one probe is let through (``half_open``) and
  its outcome closes or re-opens the circuit.
* :class:`BackoffPolicy` — capped exponential backoff with deterministic
  seeded jitter for the retry loop between failover attempts.
* :class:`ReplicaSet` — one partition's replicas in preference order,
  each with its own breaker; :meth:`ReplicaSet.candidates` yields the
  replicas a scan should try, healthy first.

Everything takes an injectable ``clock`` (and the policy a seeded RNG), so
open→half-open→closed transitions and backoff schedules are testable
without sleeping.
"""

from __future__ import annotations

import threading
import time
from random import Random
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ShardError

__all__ = ["CircuitBreaker", "BackoffPolicy", "ReplicaState", "ReplicaSet"]

#: Breaker state names, as reported by health surfaces.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """A consecutive-failure circuit breaker with half-open probing.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the circuit open.
    reset_timeout:
        Seconds an open circuit sheds traffic before allowing one
        half-open probe.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(self, *, failure_threshold: int = 3, reset_timeout: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ShardError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ShardError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._opens = 0

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half_open`` — time-aware: an open
        circuit whose reset timeout has elapsed reads as ``half_open``."""
        with self._lock:
            if (self._state == OPEN
                    and self._clock() - self._opened_at >= self.reset_timeout):
                return HALF_OPEN
            return self._state

    @property
    def opens(self) -> int:
        """How many times the circuit has tripped open (a counter, not a state)."""
        with self._lock:
            return self._opens

    def allow(self) -> bool:
        """May a request be sent now?

        ``closed`` always allows.  ``open`` sheds until ``reset_timeout``
        has elapsed, then transitions to ``half_open`` and allows exactly
        one probe; further calls shed until that probe reports an outcome.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.reset_timeout:
                    self._state = HALF_OPEN
                    return True
                return False
            # HALF_OPEN: one probe is already in flight; shed the rest
            # until record_success/record_failure resolves it.
            return False

    def record_success(self) -> None:
        """A request succeeded: close the circuit, clear the failure run."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        """A request failed: extend the failure run, maybe trip the circuit.

        A failed half-open probe re-opens immediately (the backend is
        still down; wait out another reset window).
        """
        with self._lock:
            now = self._clock()
            if self._state == HALF_OPEN:
                self._state = OPEN
                self._opened_at = now
                self._opens += 1
                return
            self._consecutive_failures += 1
            if (self._state == CLOSED
                    and self._consecutive_failures >= self.failure_threshold):
                self._state = OPEN
                self._opened_at = now
                self._opens += 1

    def __repr__(self) -> str:
        return (f"CircuitBreaker(state={self.state!r}, "
                f"failures={self._consecutive_failures}, opens={self._opens})")


class BackoffPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``delay(attempt)`` for attempt 0, 1, 2, ... is
    ``min(cap, base * multiplier**attempt)`` scaled by a jitter factor
    drawn uniformly from ``[1 - jitter, 1]`` using a seeded RNG — two
    policies built with the same seed produce the same schedule, which is
    what the backoff-timing tests pin down.
    """

    def __init__(self, *, base: float = 0.05, cap: float = 2.0,
                 multiplier: float = 2.0, jitter: float = 0.5, seed: int = 0):
        if base < 0 or cap < 0:
            raise ShardError("backoff base and cap must be non-negative")
        if multiplier < 1:
            raise ShardError("backoff multiplier must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ShardError("backoff jitter must be in [0, 1]")
        self.base = base
        self.cap = cap
        self.multiplier = multiplier
        self.jitter = jitter
        self._rng = Random(seed)
        self._lock = threading.Lock()

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        raw = min(self.cap, self.base * (self.multiplier ** attempt))
        if self.jitter == 0.0:
            return raw
        with self._lock:
            factor = 1.0 - self.jitter * self._rng.random()
        return raw * factor

    def __repr__(self) -> str:
        return (f"BackoffPolicy(base={self.base}, cap={self.cap}, "
                f"multiplier={self.multiplier}, jitter={self.jitter})")


class ReplicaState:
    """One replica URL of one partition, with its breaker and counters."""

    __slots__ = ("url", "breaker", "successes", "failures")

    def __init__(self, url: str, breaker: CircuitBreaker):
        self.url = url
        self.breaker = breaker
        self.successes = 0
        self.failures = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "url": self.url,
            "state": self.breaker.state,
            "successes": self.successes,
            "failures": self.failures,
            "circuit_opens": self.breaker.opens,
        }


class ReplicaSet:
    """One partition's replicas in preference order.

    The first replica in ``urls`` is the *primary* — candidate ordering
    prefers it while healthy, so a steady-state fleet keeps its keep-alive
    sockets warm on one replica per partition instead of spraying load
    across all of them.
    """

    def __init__(self, partition_id: str, urls: Sequence[str], *,
                 breaker_factory: Callable[[], CircuitBreaker]):
        if not urls:
            raise ShardError(f"partition {partition_id!r} needs at least one replica")
        self.partition_id = partition_id
        self.replicas: Tuple[ReplicaState, ...] = tuple(
            ReplicaState(url, breaker_factory()) for url in urls
        )

    def candidates(self) -> List[ReplicaState]:
        """Replicas a scan should try, in order.

        Healthy (non-``open``) replicas first, in preference order, then
        the open-circuit ones — when *every* replica's circuit is open the
        scan still tries them all rather than failing without a single
        attempt (fail-open: a recovered backend should not be unreachable
        just because its probe window has not come around yet).
        """
        healthy = [r for r in self.replicas if r.breaker.state != OPEN]
        shed = [r for r in self.replicas if r.breaker.state == OPEN]
        return healthy + shed

    def health(self) -> Dict[str, object]:
        """The read surface ``/v1/healthz`` reports per partition."""
        states = [replica.breaker.state for replica in self.replicas]
        return {
            "replicas": len(self.replicas),
            "healthy": sum(1 for state in states if state != OPEN),
            "open": sum(1 for state in states if state == OPEN),
            "half_open": sum(1 for state in states if state == HALF_OPEN),
        }

    def __len__(self) -> int:
        return len(self.replicas)

    def __repr__(self) -> str:
        return (f"ReplicaSet({self.partition_id!r}, "
                f"urls={[r.url for r in self.replicas]})")
