"""Tests for the typed metric instruments and the registry."""

import math
import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs.prometheus import parse_exposition, validate_exposition
from repro.obs.registry import DEFAULT_LATENCY_BUCKETS, MetricsRegistry


class TestCounter:
    def test_inc_and_get(self):
        counter = MetricsRegistry().counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.labels().get() == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total", "help")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_function_backed(self):
        source = {"value": 7}
        counter = MetricsRegistry().counter("c_total", "help")
        counter.set_function(lambda: source["value"])
        assert counter.labels().get() == 7.0
        source["value"] = 9
        assert counter.labels().get() == 9.0


class TestGauge:
    def test_set_inc_get(self):
        gauge = MetricsRegistry().gauge("g", "help")
        gauge.set(10.0)
        gauge.labels().inc(-3.0)
        assert gauge.labels().get() == 7.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", "help",
                                       buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        counts, total, count = histogram.labels().get()
        assert counts == [1, 2, 1]        # 50.0 only lands in +Inf
        assert count == 5
        assert total == pytest.approx(56.05)

    def test_boundary_value_falls_in_its_bucket(self):
        # Prometheus buckets are `le` (less-or-equal): an observation equal
        # to a bound belongs to that bound's bucket.
        histogram = MetricsRegistry().histogram("h_seconds", "help",
                                                buckets=(1.0, 2.0))
        histogram.observe(1.0)
        counts, _, _ = histogram.labels().get()
        assert counts == [1, 0]

    def test_unsorted_bounds_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.histogram("h", "help", buckets=(1.0, 0.5)).labels()
        with pytest.raises(ObservabilityError):
            registry.histogram("h2", "help", buckets=(1.0, 1.0)).labels()

    def test_collect_is_cumulative_with_inf_and_sum(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", "help", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 9.0):
            histogram.observe(value)
        samples = {(s.name, dict(s.labels).get("le")): s.value
                   for s in registry.collect()[0].collect()}
        assert samples[("h_seconds_bucket", "0.1")] == 1
        assert samples[("h_seconds_bucket", "1.0")] == 2
        assert samples[("h_seconds_bucket", "+Inf")] == 3
        assert samples[("h_seconds_count", None)] == 3
        assert samples[("h_seconds_sum", None)] == pytest.approx(9.55)


class TestFamilies:
    def test_labelled_children_are_cached(self):
        family = MetricsRegistry().counter("c_total", "help", ("kind",))
        family.labels("knn").inc()
        family.labels("knn").inc()
        family.labels("range").inc()
        values = {dict(s.labels)["kind"]: s.value for s in family.collect()}
        assert values == {"knn": 2.0, "range": 1.0}

    def test_wrong_label_arity_rejected(self):
        family = MetricsRegistry().counter("c_total", "help", ("kind",))
        with pytest.raises(ObservabilityError):
            family.labels("a", "b")

    def test_callback_enumerates_dynamic_labels(self):
        family = MetricsRegistry().counter("c_total", "help", ("partition",))
        state = {"P0": 1, "P1": 2}
        family.set_callback(
            lambda: {(name,): value for name, value in state.items()})
        state["P2"] = 3
        values = {dict(s.labels)["partition"]: s.value for s in family.collect()}
        assert values == {"P0": 1.0, "P1": 2.0, "P2": 3.0}

    def test_histogram_families_cannot_be_callback_backed(self):
        family = MetricsRegistry().histogram("h_seconds", "help")
        with pytest.raises(ObservabilityError):
            family.set_callback(lambda: {})


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", ("kind",))
        second = registry.counter("c_total", "other help", ("kind",))
        assert first is second

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help")
        with pytest.raises(ObservabilityError):
            registry.gauge("c_total", "help")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help", ("kind",))
        with pytest.raises(ObservabilityError):
            registry.counter("c_total", "help", ("partition",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("1bad", "help")
        with pytest.raises(ObservabilityError):
            registry.counter("ok_total", "help", ("__reserved",))
        with pytest.raises(ObservabilityError):
            registry.histogram("h_seconds", "help", ("le",))

    def test_collect_orders_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zz_total", "help")
        registry.counter("aa_total", "help")
        assert [family.name for family in registry.collect()] == \
            ["aa_total", "zz_total"]

    def test_default_buckets_cover_the_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 5.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert not any(math.isinf(b) for b in DEFAULT_LATENCY_BUCKETS)

    def test_scrapes_race_child_creation_and_observations(self):
        """Stress: scrapers versus writers on one registry, no locks dropped.

        Scrape threads render the Prometheus exposition and walk
        ``collect()`` (the JSON path) while writer threads keep creating
        new labelled children and observing histograms.  Nothing may
        raise, every exposition snapshot must parse cleanly, and the
        counters visible in successive scrapes must be monotone.
        """
        registry = MetricsRegistry()
        counter = registry.counter("stress_total", "help", ("kind",))
        histogram = registry.histogram("stress_seconds", "help", ("kind",),
                                       buckets=(0.001, 0.01, 0.1))
        rounds, writers, scrapers = 400, 4, 3
        start = threading.Barrier(writers + scrapers)
        errors = []
        totals_seen = []

        def write(worker: int):
            try:
                start.wait()
                for i in range(rounds):
                    # A fresh label every few iterations races child
                    # creation against the scrapers' family walks.
                    counter.labels(f"w{worker}-{i % 17}").inc()
                    histogram.labels(f"w{worker}-{i % 5}").observe(0.004)
            except Exception as error:  # noqa: BLE001 - join reports it
                errors.append(error)

        def scrape():
            try:
                start.wait()
                seen = []
                for _ in range(rounds // 4):
                    families = parse_exposition(registry.render())
                    assert validate_exposition(families) == []
                    total = sum(sample.value
                                for sample in families["stress_total"].samples)
                    seen.append(total)
                    for family in registry.collect():
                        for sample in family.collect():
                            assert sample.value >= 0.0
                totals_seen.append(seen)
            except Exception as error:  # noqa: BLE001 - join reports it
                errors.append(error)

        threads = [threading.Thread(target=write, args=(w,))
                   for w in range(writers)]
        threads += [threading.Thread(target=scrape) for _ in range(scrapers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        for seen in totals_seen:
            assert seen == sorted(seen)  # counters never move backwards
        final = sum(sample.value for sample in counter.collect())
        assert final == writers * rounds

    def test_concurrent_observations_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help")
        histogram = registry.histogram("h_seconds", "help")

        def hammer():
            for _ in range(1000):
                counter.inc()
                histogram.observe(0.01)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.labels().get() == 4000.0
        _, _, count = histogram.labels().get()
        assert count == 4000
