"""Transport selection: one constructor for both HTTP front ends.

Every in-process construction site (tests, benchmarks, tools) and all the
CLIs build their server through :func:`create_server`, so the whole stack
switches transport from one place: the ``--transport`` flag, the
``$REPRO_TRANSPORT`` environment variable (which subprocess fleets inherit
— the launcher passes the parent environment through), or the baked-in
default.  The event-loop transport is the default: the benchmarks in
``BENCH_server_throughput.json`` show it clearing twice the threaded
transport's QPS at 8 client threads with no p99 regression.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.errors import QueryError
from repro.faults import FaultPlan
from repro.server.async_http import AsyncSemTreeServer
from repro.server.http import SemTreeServer

__all__ = ["TRANSPORTS", "DEFAULT_TRANSPORT", "TRANSPORT_ENV",
           "resolve_transport", "create_server"]

#: Transport names accepted by ``create_server`` / ``--transport``.
TRANSPORTS = ("threaded", "async")

#: The transport used when neither the caller nor the environment chose.
DEFAULT_TRANSPORT = "async"

#: Environment variable consulted when no explicit transport is passed
#: (the CI matrix and the chaos/perf smoke jobs set this).
TRANSPORT_ENV = "REPRO_TRANSPORT"


def resolve_transport(transport: Optional[str] = None) -> str:
    """The effective transport name: argument → environment → default."""
    name = transport or os.environ.get(TRANSPORT_ENV) or DEFAULT_TRANSPORT
    name = name.strip().lower()
    if name not in TRANSPORTS:
        raise QueryError(
            f"unknown transport {name!r}; expected one of {', '.join(TRANSPORTS)}")
    return name


def create_server(app, *, transport: Optional[str] = None,
                  host: str = "127.0.0.1", port: int = 0, quiet: bool = True,
                  request_timeout: float = 30.0,
                  fault_plan: Optional[FaultPlan] = None,
                  idle_timeout: Optional[float] = None,
                  transport_workers: int = 8,
                  wire_cache: bool = False,
                  wire_cache_capacity: int = 4096,
                  ) -> Union[SemTreeServer, AsyncSemTreeServer]:
    """Build the chosen transport around ``app`` (not yet serving).

    The threaded transport ignores the loop-specific knobs
    (``idle_timeout``, ``transport_workers``, ``wire_cache*``): its
    per-read socket timeout covers the idle/stall cases and it has no
    loop-side cache.  Everything else — URL surface, wire behaviour,
    drain semantics — is identical between the two (see
    :mod:`repro.server.protocol`).
    """
    name = resolve_transport(transport)
    if name == "threaded":
        return SemTreeServer(app, host=host, port=port, quiet=quiet,
                             request_timeout=request_timeout,
                             fault_plan=fault_plan)
    return AsyncSemTreeServer(app, host=host, port=port, quiet=quiet,
                              request_timeout=request_timeout,
                              idle_timeout=idle_timeout,
                              fault_plan=fault_plan,
                              transport_workers=transport_workers,
                              wire_cache=wire_cache,
                              wire_cache_capacity=wire_cache_capacity)
