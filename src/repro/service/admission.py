"""Admission control: shed load *before* it queues, not after it times out.

An overloaded engine used to queue silently — every accepted query waited
behind the backlog, missed its deadline, and burned a worker computing an
answer nobody would read.  :class:`AdmissionController` sits in front of
:meth:`~repro.service.engine.QueryEngine.execute_batch` and rejects at the
door instead, with HTTP semantics (503 + ``Retry-After``, via
:class:`~repro.errors.AdmissionError`) so well-behaved clients back off:

* **Bounded queue depth** — more than ``max_queue_depth`` searches
  outstanding (queued + running) rejects immediately: past that point the
  queue only manufactures timeouts.
* **Deadline-aware rejection** — a query whose predicted queue wait
  (:meth:`QueryEngine.predicted_wait_seconds`) already exceeds its deadline
  is rejected up front; accepting it would waste a worker on a result the
  client has given up on.
* **Per-client token buckets** — rate limits keyed on the ``X-Client-Id``
  header (clientless requests share one anonymous bucket), so one noisy
  tenant cannot starve the rest.

Every rejection reason is counted and surfaced through
``repro_requests_shed_total{reason=...}``; the chaos harness asserts the
overload stage sheds here while the p99 of *accepted* queries stays
bounded.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict
from typing import Callable, Dict, Optional

from repro.errors import AdmissionError, QueryError

__all__ = ["TokenBucket", "AdmissionController"]

#: Most client buckets kept at once; least-recently-seen clients are
#: evicted first.  An evicted client restarts with a full burst — a bounded
#: memory footprint is worth that slack (same trade hot caches make).
CLIENT_BUCKET_LIMIT = 1024

#: Floor for Retry-After hints, seconds: short enough not to punish a
#: client for a transient spike, long enough that an immediate blind retry
#: (which would find the same backlog) is off the table.
MIN_RETRY_AFTER = 0.1


class TokenBucket:
    """The classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Starts full (a new client may burst immediately).  ``take`` is lazy —
    tokens accrue on demand from the elapsed time, no refill thread.
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated_at", "_clock", "_lock")

    def __init__(self, rate: float, burst: float, *,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0:
            raise QueryError(f"token bucket rate must be positive, got {rate}")
        if burst < 1:
            raise QueryError(f"token bucket burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._clock = clock
        self._updated_at = clock()
        self._lock = threading.Lock()

    def take(self, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` if available; False (and no debit) otherwise."""
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will have accrued (0.0 if available now)."""
        with self._lock:
            self._refill()
            deficit = tokens - self._tokens
            return max(0.0, deficit / self.rate)

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(float(self.burst),
                           self._tokens + (now - self._updated_at) * self.rate)
        self._updated_at = now

    def __repr__(self) -> str:
        with self._lock:
            return (f"TokenBucket(rate={self.rate}, burst={self.burst}, "
                    f"tokens={self._tokens:.2f})")


class AdmissionController:
    """Accept-or-shed decisions in front of the query engine.

    Parameters
    ----------
    engine:
        The :class:`~repro.service.engine.QueryEngine` whose backlog the
        controller reads (``outstanding()`` / ``predicted_wait_seconds()``).
    max_queue_depth:
        Most searches allowed outstanding (queued + running) before new
        queries are shed; ``None`` disables the depth check.
    client_rate / client_burst:
        Per-client token-bucket rate (queries/second) and burst capacity;
        ``client_rate=None`` disables rate limiting.
    clock:
        Injectable time source for the buckets (tests use a fake clock).
    """

    def __init__(self, engine, *, max_queue_depth: Optional[int] = None,
                 client_rate: Optional[float] = None, client_burst: int = 10,
                 clock: Callable[[], float] = time.monotonic):
        if max_queue_depth is not None and max_queue_depth < 1:
            raise QueryError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if client_rate is not None and client_rate <= 0:
            raise QueryError(f"client_rate must be positive, got {client_rate}")
        if client_burst < 1:
            raise QueryError(f"client_burst must be >= 1, got {client_burst}")
        self.engine = engine
        self.max_queue_depth = max_queue_depth
        self.client_rate = client_rate
        self.client_burst = client_burst
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._admitted = 0
        self._shed: Counter = Counter()

    @property
    def enabled(self) -> bool:
        """Whether any admission check is configured at all."""
        return self.max_queue_depth is not None or self.client_rate is not None

    # -- the decision -------------------------------------------------------------------

    def admit(self, *, queries: int = 1, deadline: Optional[float] = None,
              client_id: Optional[str] = None) -> None:
        """Admit ``queries`` requests' worth of work or raise :class:`AdmissionError`.

        Checks run cheapest-first and every rejection carries a
        ``Retry-After`` hint: the bucket's accrual time for a rate limit,
        the predicted backlog drain time for queue pressure.
        """
        if self.client_rate is not None:
            bucket = self._bucket_for(client_id or "(anonymous)")
            if not bucket.take(float(queries)):
                self._count_shed("rate_limit", queries)
                raise AdmissionError(
                    f"client {client_id or '(anonymous)'!s} is over its "
                    f"rate limit ({self.client_rate:g} queries/s, "
                    f"burst {self.client_burst})",
                    reason="rate_limit",
                    retry_after=max(MIN_RETRY_AFTER,
                                    bucket.retry_after(float(queries))),
                )
        if self.max_queue_depth is not None:
            outstanding = self.engine.outstanding()
            if outstanding + queries > self.max_queue_depth:
                self._count_shed("queue_full", queries)
                raise AdmissionError(
                    f"the query queue is full ({outstanding} outstanding, "
                    f"depth limit {self.max_queue_depth})",
                    reason="queue_full",
                    retry_after=max(MIN_RETRY_AFTER,
                                    self.engine.predicted_wait_seconds()),
                )
        if deadline is not None:
            predicted = self.engine.predicted_wait_seconds()
            if predicted > deadline:
                # The query would spend its whole budget waiting in line;
                # running the search anyway only manufactures a timeout.
                self._count_shed("deadline", queries)
                raise AdmissionError(
                    f"predicted queue wait {predicted:.3f}s exceeds the "
                    f"query deadline {deadline:.3f}s",
                    reason="deadline",
                    retry_after=max(MIN_RETRY_AFTER, predicted),
                )
        with self._lock:
            self._admitted += queries

    def shed_transport_overflow(self, *, pending: int) -> AdmissionError:
        """Count and build the rejection for a request shed at *enqueue* time.

        The event-loop transport calls this before submitting a request to
        its worker pool: once the pool already holds ``max_queue_depth``
        requests, queueing more only manufactures timeouts — the same
        judgement :meth:`admit` makes from inside a worker, made one hop
        earlier (before the submit and its context switch are paid for).
        The rejection is counted under the ``queue_full`` reason so both
        shed points roll up into one ``repro_requests_shed_total`` series.
        """
        self._count_shed("queue_full", 1)
        return AdmissionError(
            f"the transport queue is full ({pending} requests pending, "
            f"depth limit {self.max_queue_depth})",
            reason="queue_full",
            retry_after=max(MIN_RETRY_AFTER,
                            self.engine.predicted_wait_seconds()),
        )

    def _bucket_for(self, client_id: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client_id)
            if bucket is None:
                bucket = TokenBucket(self.client_rate, float(self.client_burst),
                                     clock=self._clock)
                self._buckets[client_id] = bucket
                while len(self._buckets) > CLIENT_BUCKET_LIMIT:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client_id)
            return bucket

    def _count_shed(self, reason: str, queries: int) -> None:
        with self._lock:
            self._shed[reason] += queries

    # -- exposition ---------------------------------------------------------------------

    def bind_registry(self, registry) -> None:
        """Mirror the shed/admitted counters into a Prometheus registry."""
        def admitted() -> float:
            with self._lock:
                return float(self._admitted)

        registry.counter(
            "repro_requests_admitted_total",
            "Queries accepted past admission control.",
        ).set_function(admitted)
        registry.counter(
            "repro_requests_shed_total",
            "Queries rejected by admission control, by reason.", ("reason",),
        ).set_callback(self._shed_totals)

    def _shed_totals(self) -> Dict[tuple, float]:
        with self._lock:
            return {(reason,): float(count)
                    for reason, count in self._shed.items()}

    def snapshot(self) -> Dict[str, object]:
        """Flat counters for the ``/v1/metrics`` payload."""
        with self._lock:
            shed = dict(self._shed)
            admitted = self._admitted
            clients = len(self._buckets)
        return {
            "enabled": self.enabled,
            "max_queue_depth": self.max_queue_depth,
            "client_rate": self.client_rate,
            "admitted": admitted,
            "shed": shed,
            "shed_total": sum(shed.values()),
            "tracked_clients": clients,
        }

    def __repr__(self) -> str:
        return (f"AdmissionController(max_queue_depth={self.max_queue_depth}, "
                f"client_rate={self.client_rate}, enabled={self.enabled})")
