"""Pattern-based extraction of (Actor, Function, Parameter) triples.

The motivating example of the paper maps each requirement sentence to
triples whose predicate is a unary "function" (``accept a command``,
``send a message``, ``acquire an input``), whose subject is the Actor
(software component or hardware device) and whose object is the related
Parameter.  The synthetic corpus generator emits controlled-English
sentences of the form::

    The component OBSW001 shall accept the command start-up.
    The component OBSW014 shall not send the message power-amplifier.

This extractor recognises that shape: a subject introduced by "the
component/device/unit", a modal ("shall", optionally negated), a verb phrase
mapped to a function concept, an object introduced by a sortal noun
("command", "message", "input", ...), and the parameter itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExtractionError
from repro.nlp.tokenizer import Token, split_sentences, tokenize
from repro.rdf.terms import Concept
from repro.rdf.triple import Triple

__all__ = ["ExtractionRule", "TripleExtractor", "DEFAULT_RULES"]

#: Prefix used for function (predicate) concepts, as in the paper's listings.
FUNCTION_PREFIX = "Fun"

#: Mapping from a sortal noun ("command") to the object prefix used in the paper.
_SORTAL_PREFIXES: Dict[str, str] = {
    "command": "CmdType",
    "message": "MsgType",
    "input": "InType",
    "output": "OutType",
    "mode": "ModeType",
    "parameter": "ParType",
    "telemetry": "TmType",
    "signal": "SigType",
}


@dataclass(frozen=True, slots=True)
class ExtractionRule:
    """One verb-phrase pattern: matched tokens → function concept name.

    Attributes
    ----------
    verb_tokens:
        The normalised tokens of the verb phrase (e.g. ``("accept",)``).
    function:
        The function concept name (e.g. ``"accept_cmd"``).
    negated_function:
        The function concept used when the sentence contains "not"
        (e.g. ``"block_cmd"``); when ``None`` the function name is prefixed
        with ``"not_"``.
    """

    verb_tokens: Tuple[str, ...]
    function: str
    negated_function: Optional[str] = None

    def negated(self) -> str:
        """Name of the function to use for a negated sentence."""
        return self.negated_function or f"not_{self.function}"


#: The default rule set covers the verb phrases produced by the synthetic
#: requirements generator (and their negations).
DEFAULT_RULES: Tuple[ExtractionRule, ...] = (
    ExtractionRule(("accept",), "accept_cmd", "block_cmd"),
    ExtractionRule(("block",), "block_cmd", "accept_cmd"),
    ExtractionRule(("send",), "send_msg", "suppress_msg"),
    ExtractionRule(("suppress",), "suppress_msg", "send_msg"),
    ExtractionRule(("acquire",), "acquire_in", "ignore_in"),
    ExtractionRule(("ignore",), "ignore_in", "acquire_in"),
    ExtractionRule(("enable",), "enable_mode", "disable_mode"),
    ExtractionRule(("disable",), "disable_mode", "enable_mode"),
    ExtractionRule(("start",), "start_proc", "stop_proc"),
    ExtractionRule(("stop",), "stop_proc", "start_proc"),
    ExtractionRule(("transmit",), "transmit_tm", "withhold_tm"),
    ExtractionRule(("withhold",), "withhold_tm", "transmit_tm"),
    ExtractionRule(("raise",), "raise_signal", "clear_signal"),
    ExtractionRule(("clear",), "clear_signal", "raise_signal"),
)

_SUBJECT_SORTALS = {"component", "device", "unit", "subsystem", "module"}
_MODALS = {"shall", "must", "will", "should"}
_ARTICLES = {"the", "a", "an"}


class TripleExtractor:
    """Extracts (Actor, Fun:function, Type:parameter) triples from controlled English."""

    def __init__(self, rules: Sequence[ExtractionRule] = DEFAULT_RULES):
        if not rules:
            raise ExtractionError("the extractor needs at least one rule")
        self._rules: Dict[str, ExtractionRule] = {}
        for rule in rules:
            self._rules[" ".join(rule.verb_tokens)] = rule

    # -- public API --------------------------------------------------------------------

    def extract_from_text(self, text: str) -> List[Triple]:
        """Extract a triple from every parsable sentence of ``text``.

        Sentences that do not match the controlled-English pattern are
        skipped silently (real requirement documents contain headings and
        notes); use :meth:`extract_from_sentence` to get a hard error for a
        single sentence instead.
        """
        triples: List[Triple] = []
        for sentence in split_sentences(text):
            try:
                triples.append(self.extract_from_sentence(sentence))
            except ExtractionError:
                continue
        return triples

    def extract_from_sentence(self, sentence: str) -> Triple:
        """Extract the (subject, predicate, object) triple of one sentence.

        Raises
        ------
        ExtractionError
            If the sentence does not follow the controlled-English pattern.
        """
        tokens = [token for token in tokenize(sentence) if not token.is_punctuation]
        if not tokens:
            raise ExtractionError("empty sentence")
        subject = self._parse_subject(tokens)
        negated, verb_index = self._parse_modal(tokens)
        rule, after_verb = self._parse_verb(tokens, verb_index)
        sortal, parameter = self._parse_object(tokens, after_verb)
        function_name = rule.negated() if negated else rule.function
        prefix = _SORTAL_PREFIXES.get(sortal, "ParType")
        return Triple(
            Concept(subject),
            Concept(function_name, FUNCTION_PREFIX),
            Concept(parameter, prefix),
        )

    # -- parsing helpers -------------------------------------------------------------------

    @staticmethod
    def _parse_subject(tokens: List[Token]) -> str:
        index = 0
        if index < len(tokens) and tokens[index].normal in _ARTICLES:
            index += 1
        if index < len(tokens) and tokens[index].normal in _SUBJECT_SORTALS:
            index += 1
        if index >= len(tokens):
            raise ExtractionError("sentence has no subject")
        return tokens[index].text

    @staticmethod
    def _parse_modal(tokens: List[Token]) -> Tuple[bool, int]:
        """Locate the modal; return (negated, index of the verb token)."""
        for index, token in enumerate(tokens):
            if token.normal in _MODALS:
                negated = (
                    index + 1 < len(tokens) and tokens[index + 1].normal in {"not", "never"}
                )
                return negated, index + (2 if negated else 1)
        raise ExtractionError("sentence has no modal verb (shall/must/will/should)")

    def _parse_verb(self, tokens: List[Token], verb_index: int) -> Tuple[ExtractionRule, int]:
        if verb_index >= len(tokens):
            raise ExtractionError("sentence ends before its verb")
        verb = tokens[verb_index].normal
        rule = self._rules.get(verb)
        if rule is None:
            raise ExtractionError(f"unknown verb {verb!r}")
        return rule, verb_index + 1

    @staticmethod
    def _parse_object(tokens: List[Token], start: int) -> Tuple[str, str]:
        index = start
        if index < len(tokens) and tokens[index].normal in _ARTICLES:
            index += 1
        if index >= len(tokens):
            raise ExtractionError("sentence has no object")
        sortal = tokens[index].normal
        parameter_tokens = tokens[index + 1:]
        if not parameter_tokens:
            # The sortal itself is the parameter ("... shall raise the alarm").
            return "parameter", sortal
        parameter = " ".join(token.text for token in parameter_tokens)
        return sortal, parameter
