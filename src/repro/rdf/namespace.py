"""Namespace / prefix management.

The paper writes concepts as ``X:x`` where ``X`` is a vocabulary prefix
("the meaning of the concept ``x`` can be found by using the prefix ``X``;
if ``X`` is not specified, we use a standard vocabulary").  The
:class:`NamespaceRegistry` keeps the mapping from prefixes to vocabulary
identifiers (IRIs or simply human-readable names) and expands/compacts
qualified names.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping

from repro.errors import NamespaceError
from repro.rdf.terms import Concept

__all__ = ["NamespaceRegistry", "DEFAULT_NAMESPACE"]

#: Identifier used for the paper's implicit "standard vocabulary".
DEFAULT_NAMESPACE = "std"


class NamespaceRegistry:
    """A registry of ``prefix → namespace identifier`` bindings.

    The registry is deliberately small: the reproduction only needs to
    (a) validate that prefixes used in parsed documents are known, and
    (b) expand a :class:`Concept` to a fully-qualified identifier that
    vocabularies and taxonomies use as a key.
    """

    def __init__(self, bindings: Mapping[str, str] | None = None):
        self._bindings: Dict[str, str] = {"": DEFAULT_NAMESPACE}
        if bindings:
            for prefix, namespace in bindings.items():
                self.bind(prefix, namespace)

    # -- binding management ---------------------------------------------------------

    def bind(self, prefix: str, namespace: str, *, overwrite: bool = False) -> None:
        """Bind ``prefix`` to ``namespace``.

        Raises
        ------
        NamespaceError
            If the prefix is already bound to a *different* namespace and
            ``overwrite`` is false.
        """
        if not namespace:
            raise NamespaceError("cannot bind a prefix to an empty namespace")
        existing = self._bindings.get(prefix)
        if existing is not None and existing != namespace and not overwrite:
            raise NamespaceError(
                f"prefix {prefix!r} is already bound to {existing!r} (wanted {namespace!r})"
            )
        self._bindings[prefix] = namespace

    def unbind(self, prefix: str) -> None:
        """Remove a prefix binding (the default prefix cannot be removed)."""
        if prefix == "":
            raise NamespaceError("the default prefix cannot be unbound")
        if prefix not in self._bindings:
            raise NamespaceError(f"prefix {prefix!r} is not bound")
        del self._bindings[prefix]

    # -- lookups ---------------------------------------------------------------------

    def namespace_of(self, prefix: str) -> str:
        """Return the namespace bound to ``prefix``.

        Raises
        ------
        NamespaceError
            If the prefix is unknown.
        """
        try:
            return self._bindings[prefix]
        except KeyError:
            raise NamespaceError(f"unknown prefix {prefix!r}") from None

    def expand(self, concept: Concept) -> str:
        """Return the fully-qualified identifier ``namespace/name`` of a concept."""
        namespace = self.namespace_of(concept.prefix)
        return f"{namespace}/{concept.name}"

    def compact(self, identifier: str) -> Concept:
        """Inverse of :meth:`expand`: turn ``namespace/name`` back into a concept.

        Raises
        ------
        NamespaceError
            If no registered prefix maps to the identifier's namespace.
        """
        namespace, sep, name = identifier.rpartition("/")
        if not sep or not name:
            raise NamespaceError(f"malformed expanded identifier: {identifier!r}")
        for prefix, bound in self._bindings.items():
            if bound == namespace:
                return Concept(name, prefix)
        raise NamespaceError(f"no prefix bound to namespace {namespace!r}")

    def knows(self, prefix: str) -> bool:
        """Return ``True`` when the prefix is registered."""
        return prefix in self._bindings

    # -- iteration / dunder -----------------------------------------------------------

    def __contains__(self, prefix: str) -> bool:
        return self.knows(prefix)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(sorted(self._bindings.items()))

    def __len__(self) -> int:
        return len(self._bindings)

    def as_dict(self) -> Dict[str, str]:
        """Return a copy of the bindings as a plain dictionary."""
        return dict(self._bindings)

    def __repr__(self) -> str:
        return f"NamespaceRegistry({self.as_dict()!r})"
