"""Acceptance oracle: a real coordinator + shard subprocess fleet.

This is the ISSUE's acceptance criterion verbatim: a coordinator with ≥2
real shard server subprocesses answers a mixed k-NN/range workload
identically to the single-process :class:`DistributedSemTree` oracle, and
killing a shard mid-service yields a structured partial-failure error.

One fleet is booted per module (subprocess start-up dominates the test's
cost); the workload runs over multiple concurrent client threads.
"""

from __future__ import annotations

import random
import threading

import pytest

from coordinator_corpus import assert_equivalent, build_corpus_index
from repro.coordinator import launch_coordinator, launch_shards, shutdown_processes
from repro.errors import ServerError
from repro.ingest import IngestingIndex
from repro.server.bootstrap import vocabulary_hints
from repro.service.engine import QueryEngine
from repro.service.planner import QuerySpec
from repro.workloads import ServerClient


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    """Checkpoint a corpus, launch shard subprocesses + a coordinator."""
    tmp_path = tmp_path_factory.mktemp("sharded-cluster")
    index, triples = build_corpus_index()
    actors, parameters = vocabulary_hints(triples)
    live = IngestingIndex(
        index, tmp_path / "wal.jsonl",
        vocabulary_hints={"actors": actors, "parameters": parameters},
    )
    snapshot = tmp_path / "snapshot.json"
    live.checkpoint(snapshot)
    live.close()

    data_partitions = [
        partition.partition_id for partition in index.tree.partitions
        if partition.point_count > 0
    ]
    assert len(data_partitions) >= 2

    fleet = []
    try:
        shards = launch_shards(snapshot, data_partitions)
        fleet.extend(shards)
        coordinator = launch_coordinator(
            snapshot, {shard.partition_id: shard.url for shard in shards}
        )
        fleet.append(coordinator)
        yield coordinator, shards, index, triples
    finally:
        shutdown_processes(fleet)


def test_fleet_is_really_separate_processes(cluster):
    coordinator, shards, _, _ = cluster
    pids = {managed.process.pid for managed in [coordinator, *shards]}
    assert len(pids) == len(shards) + 1
    for managed in [coordinator, *shards]:
        assert managed.alive


def test_mixed_workload_bit_identical_to_oracle(cluster):
    coordinator, _, index, triples = cluster
    oracle = QueryEngine(index, workers=1)
    rng = random.Random(5)
    client = ServerClient(coordinator.url)
    try:
        for _ in range(30):
            triple = triples[rng.randrange(len(triples))]
            if rng.random() < 0.6:
                wire = client.knn(triple, 4)
                want = oracle.execute_sequential([QuerySpec.k_nearest(triple, 4)])[0]
                assert wire["error"] is None
                assert_equivalent(wire["matches"], want.matches, truncated=True)
            else:
                wire = client.range(triple, 0.2)
                want = oracle.execute_sequential([QuerySpec.range_query(triple, 0.2)])[0]
                assert wire["error"] is None
                assert_equivalent(wire["matches"], want.matches, truncated=False)
    finally:
        oracle.close()
        client.close()


def test_concurrent_clients_stay_exact(cluster):
    coordinator, _, index, triples = cluster
    oracle = QueryEngine(index, workers=1)
    specs = [QuerySpec.k_nearest(triple, 3) for triple in triples[:8]]
    expected = {
        id(spec): result.matches
        for spec, result in zip(specs, oracle.execute_sequential(specs))
    }
    failures = []

    def worker():
        client = ServerClient(coordinator.url)
        try:
            for spec in specs:
                wire = client.knn(spec.triple, spec.k)
                assert_equivalent(wire["matches"], expected[id(spec)], truncated=True)
        except Exception as error:  # noqa: BLE001 - reported to the main thread
            failures.append(error)
        finally:
            client.close()

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    oracle.close()
    assert not failures, failures


def test_debug_trace_covers_the_fan_out_wall_time(cluster):
    """Acceptance: one traced query across the real subprocess fleet.

    The returned span tree must account for >= 95% of the handled wall
    time, carry the client's trace id end to end, and show one
    coordinator-side scan span per data partition.
    """
    import http.client
    import json
    import urllib.parse

    coordinator, shards, _, triples = cluster
    body = ServerClient.knn_payload(triples[2], 6)
    parsed = urllib.parse.urlsplit(coordinator.url)
    connection = http.client.HTTPConnection(parsed.hostname, parsed.port,
                                            timeout=30)
    try:
        connection.request(
            "POST", "/v1/knn", body=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json",
                     "X-Trace-Id": "fleet-acceptance-1",
                     "X-Debug-Trace": "1"})
        response = connection.getresponse()
        headers = dict(response.getheaders())
        payload = json.loads(response.read())
    finally:
        connection.close()
    assert response.status == 200
    assert headers["X-Trace-Id"] == "fleet-acceptance-1"
    trace = payload["debug"]["trace"]
    assert trace["trace_id"] == "fleet-acceptance-1"

    def walk(node):
        yield node
        for child in node["children"]:
            yield from walk(child)

    (request,) = trace["spans"]
    nodes = list(walk(request))
    scanned = {node["meta"]["partition"] for node in nodes
               if node["name"] == "shard_scan"}
    assert scanned == {shard.partition_id for shard in shards}

    (handle,) = [node for node in nodes if node["name"] == "handle"]
    intervals = sorted(
        (child["start_ms"], child["start_ms"] + child["duration_ms"])
        for child in handle["children"])
    covered, cursor = 0.0, None
    for start, end in intervals:
        if cursor is None or start > cursor:
            covered += end - start
        elif end > cursor:
            covered += end - cursor
        cursor = end if cursor is None else max(cursor, end)
    assert covered / handle["duration_ms"] >= 0.95, trace


def test_cost_annotations_match_the_sequential_oracle(cluster):
    """Acceptance: cluster-wide cost accounting is exact, not approximate.

    A traced k-NN query across the real subprocess fleet must return
    per-span cost annotations whose cluster-wide distance-computation
    total equals the sequential oracle's count — the sum of in-process
    per-partition scans over the same embedded query.  The k-NN scatter
    scans every data-bearing partition with an independent top-k state,
    which is exactly what the oracle below replays, so the totals must be
    *equal*, not merely close.
    """
    import http.client
    import json
    import urllib.parse

    from repro.core.distributed import scan_subtree_knn
    from repro.core.knn import KSearchState

    coordinator, shards, index, triples = cluster
    # A parameterisation no other test sends: the result must be computed,
    # not served from the coordinator's cache (a cache hit runs no search
    # and therefore carries no cost annotation).
    triple, k = triples[1], 5
    body = ServerClient.knn_payload(triple, k)
    parsed = urllib.parse.urlsplit(coordinator.url)
    connection = http.client.HTTPConnection(parsed.hostname, parsed.port,
                                            timeout=30)
    try:
        connection.request(
            "POST", "/v1/knn", body=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json",
                     "X-Debug-Trace": "1"})
        response = connection.getresponse()
        payload = json.loads(response.read())
    finally:
        connection.close()
    assert response.status == 200

    def walk(node):
        yield node
        for child in node["children"]:
            yield from walk(child)

    (request,) = payload["debug"]["trace"]["spans"]
    nodes = list(walk(request))

    (execute,) = [node for node in nodes if node["name"] == "execute"]
    total = execute["meta"]["cost"]
    assert total["distance_computations"] > 0

    # The execute-span total is the sum of the per-shard scan annotations.
    scan_costs = {node["meta"]["partition"]: node["meta"]["cost"]
                  for node in nodes if node["name"] == "shard_scan"}
    assert set(scan_costs) == {shard.partition_id for shard in shards}
    for counter, value in total.items():
        assert value == sum(cost[counter] for cost in scan_costs.values())

    # The oracle: replay each partition's scan in-process over the same
    # embedded coordinates and kernel the fleet used.
    point = index.embed_query(triple)
    oracle = 0
    for partition in index.tree.partitions:
        if partition.point_count == 0:
            continue
        state = KSearchState(query=point, k=k)
        scan_subtree_knn(partition.root, state, index.config.scan_kernel)
        oracle += state.cost.distance_computations
    assert total["distance_computations"] == oracle


def test_every_tier_serves_profile_and_history(cluster):
    """/v1/debug/profile and /v1/history answer on coordinator and shards."""
    coordinator, shards, _, triples = cluster
    for managed in [coordinator, *shards]:
        client = ServerClient(managed.url)
        try:
            profile = client.request("GET", "/v1/debug/profile?seconds=0.05")
            assert profile["source"] == "on_demand"
            assert profile["samples"] > 0
            history = client.request("GET", "/v1/history")
            assert set(history) == {"interval_seconds", "capacity", "entries"}
        finally:
            client.close()


def test_killed_shard_surfaces_as_structured_error_and_503_free(cluster):
    """Run LAST in the module: it kills a shard for good.

    The coordinator must stay up and answer with a per-query structured
    error naming the dead partition — not hang, not crash, not return a
    silently partial result.
    """
    coordinator, shards, _, triples = cluster
    victim = shards[0]
    victim.kill()
    client = ServerClient(coordinator.url, timeout=30.0)
    try:
        # An uncached parameterisation: a result cached before the kill is
        # (correctly) still served, so the failure needs a fresh fan-out.
        with pytest.raises(ServerError) as excinfo:
            client.knn(triples[0], 7)
        assert excinfo.value.status == 502
        assert excinfo.value.kind == "ShardError"
        assert victim.partition_id in str(excinfo.value)
        # Batched requests keep per-result errors (one dead shard must not
        # discard a batch), and the coordinator itself stays healthy.
        batch = client.knn_batch([ServerClient.knn_payload(triples[0], 8)])
        assert batch[0]["matches"] == []
        assert "ShardError" in batch[0]["error"]
        assert client.health()["status"] == "ok"
    finally:
        client.close()
