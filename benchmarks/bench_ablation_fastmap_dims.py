"""Ablation — FastMap dimensionality.

The paper maps triples into "a vectorial space" without fixing its
dimensionality.  This ablation sweeps the number of FastMap dimensions and
reports (a) the embedding quality (Kruskal stress and k-NN overlap against
the raw semantic distance) and (b) the end-task effectiveness at K = 3, so
the dimensionality/fidelity trade-off is explicit.
"""

from __future__ import annotations

import pytest

from repro.core import SemTreeConfig, SemTreeIndex
from repro.embedding import FastMap, neighbourhood_overlap, stress
from repro.evaluation import Experiment, average_precision_recall, evaluate_retrieval
from repro.requirements import (
    GeneratorConfig,
    GroundTruthOracle,
    RequirementsGenerator,
    build_requirement_distance,
    build_requirement_vocabularies,
)

from .conftest import write_report

K = 3
QUERY_CASES = 40
DIMENSIONS_SWEEP = (1, 2, 4, 8)


def _setup():
    config = GeneratorConfig(
        documents=10, requirements_per_document=8, sentences_per_requirement=3,
        actors=25, inconsistency_rate=0.3, seed=33,
    )
    corpus = RequirementsGenerator(config).generate()
    vocabularies = build_requirement_vocabularies(
        corpus.actor_names, corpus.parameter_values
    )
    distance = build_requirement_distance(vocabularies)
    oracle = GroundTruthOracle(corpus.all_triples(), vocabularies["Fun"])
    cases = oracle.build_cases(QUERY_CASES, seed=3)
    distinct = list(dict.fromkeys(corpus.all_triples()))
    return corpus, distance, cases, distinct


@pytest.mark.benchmark(group="ablation-fastmap")
def test_report_ablation_fastmap_dimensions(benchmark, results_dir):
    def run_sweep() -> Experiment:
        corpus, distance, cases, distinct = _setup()
        experiment = Experiment(
            experiment_id="ablation_fastmap_dimensions",
            description="FastMap dimensionality vs embedding quality and effectiveness",
            swept_parameter="dimensions",
        )
        for dimensions in DIMENSIONS_SWEEP:
            space = FastMap(distance, dimensions=dimensions, seed=0).fit(distinct)
            embedding_stress = stress(space, distance, max_pairs=1500, seed=1)
            overlap = neighbourhood_overlap(space, distance, k=5, sample_size=30, seed=1)

            index = SemTreeIndex(distance, SemTreeConfig(
                dimensions=dimensions, bucket_size=16, max_partitions=3,
                partition_capacity=96,
            ))
            for document in corpus.documents:
                index.add_document(document.to_rdf_document())
            index.build()
            per_query = [
                evaluate_retrieval(
                    [match.triple for match in index.k_nearest(case.target_triple, K)],
                    case.expected,
                )
                for case in cases
            ]
            effectiveness = average_precision_recall(per_query)
            experiment.record("fastmap", dimensions,
                              stress=embedding_stress,
                              knn_overlap=overlap,
                              precision=effectiveness.precision,
                              recall=effectiveness.recall,
                              f1=effectiveness.f1,
                              produced_dimensions=float(space.dimensions))
        return experiment

    experiment = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    series = experiment.series["fastmap"]

    # More dimensions never hurt the embedding fidelity (stress shrinks,
    # overlap grows), modulo a small tolerance for pivot randomness.
    assert series.values("stress")[-1] <= series.values("stress")[0] + 1e-6
    assert series.values("knn_overlap")[-1] >= series.values("knn_overlap")[0] - 0.05
    # A single dimension is measurably worse for the end task than the default 4.
    f1_by_dims = dict(zip(series.xs(), series.values("f1")))
    assert f1_by_dims[4] >= f1_by_dims[1] - 0.02

    write_report(results_dir, experiment,
                 ["stress", "knn_overlap", "precision", "recall", "f1"])
