"""Tests for KD-tree maintenance: deletion and rebalancing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import LinearScanIndex
from repro.core import KDTree, LabeledPoint
from repro.errors import IndexError_


class TestDelete:
    def test_delete_present_point(self, uniform_points_2d):
        tree = KDTree(2, bucket_size=8)
        tree.insert_all(uniform_points_2d)
        victim = uniform_points_2d[17]
        assert tree.delete(victim) is True
        assert len(tree) == len(uniform_points_2d) - 1
        assert victim not in tree.points()

    def test_delete_absent_point(self, uniform_points_2d):
        tree = KDTree(2, bucket_size=8)
        tree.insert_all(uniform_points_2d[:50])
        assert tree.delete(LabeledPoint.of([2.0, 2.0])) is False
        assert len(tree) == 50

    def test_delete_wrong_dimensionality(self):
        tree = KDTree(2)
        with pytest.raises(IndexError_):
            tree.delete(LabeledPoint.of([1.0]))

    def test_deleted_point_no_longer_returned_by_queries(self, uniform_points_2d):
        tree = KDTree(2, bucket_size=8)
        tree.insert_all(uniform_points_2d)
        victim = uniform_points_2d[3]
        tree.delete(victim)
        query = LabeledPoint.of(victim.coordinates)
        assert all(n.point != victim for n in tree.k_nearest(query, 5))
        assert all(n.point != victim for n in tree.range_query(query, 0.05))

    def test_delete_all_counts_removed(self, uniform_points_2d):
        tree = KDTree(2, bucket_size=8)
        tree.insert_all(uniform_points_2d[:100])
        removed = tree.delete_all(uniform_points_2d[:10] + [LabeledPoint.of([5.0, 5.0])])
        assert removed == 10
        assert len(tree) == 90

    def test_delete_one_of_duplicates_keeps_the_rest(self):
        tree = KDTree(2, bucket_size=4)
        duplicate = LabeledPoint.of([0.5, 0.5], label="dup")
        for _ in range(3):
            tree.insert(duplicate)
        assert tree.delete(duplicate) is True
        assert len(tree) == 2
        assert tree.points().count(duplicate) == 2


class TestRebalance:
    def test_rebalance_restores_logarithmic_depth(self, uniform_points_2d):
        subset = uniform_points_2d[:200]
        tree = KDTree.build_chain(subset)
        assert tree.depth() == 199
        tree.rebalance()
        assert tree.depth() <= 10
        assert sorted(p.label for p in tree.points()) == sorted(p.label for p in subset)

    def test_rebalance_preserves_query_answers(self, uniform_points_2d):
        tree = KDTree.build_chain(uniform_points_2d[:150])
        query = LabeledPoint.of([0.4, 0.6])
        before = [n.distance for n in tree.k_nearest(query, 5)]
        tree.rebalance()
        after = [n.distance for n in tree.k_nearest(query, 5)]
        assert after == pytest.approx(before)

    def test_rebalance_after_heavy_deletion(self, uniform_points_2d):
        tree = KDTree(2, bucket_size=4)
        tree.insert_all(uniform_points_2d)
        tree.delete_all(uniform_points_2d[:250])
        tree.rebalance()
        assert len(tree) == 50
        scan = LinearScanIndex(uniform_points_2d[250:])
        query = LabeledPoint.of([0.5, 0.5])
        assert ([n.distance for n in tree.k_nearest(query, 3)]
                == pytest.approx([n.distance for n in scan.k_nearest(query, 3)]))

    def test_rebalance_empty_tree(self):
        tree = KDTree(2, bucket_size=4)
        tree.insert(LabeledPoint.of([0.1, 0.1]))
        tree.delete(LabeledPoint.of([0.1, 0.1]))
        tree.rebalance()
        assert len(tree) == 0
        assert tree.node_count() == 1


coordinate = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@given(raw=st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=50),
       delete_count=st.integers(min_value=0, max_value=20))
@settings(max_examples=60, deadline=None)
def test_property_delete_then_query_matches_linear_scan(raw, delete_count):
    points = [LabeledPoint.of(coords, label=index) for index, coords in enumerate(raw)]
    tree = KDTree(2, bucket_size=4)
    tree.insert_all(points)
    to_delete = points[:min(delete_count, len(points))]
    tree.delete_all(to_delete)
    survivors = points[len(to_delete):]
    assert sorted(p.label for p in tree.points()) == sorted(p.label for p in survivors)
    if survivors:
        query = LabeledPoint.of([0.5, 0.5])
        expected = [n.distance for n in LinearScanIndex(survivors).k_nearest(query, 3)]
        actual = [n.distance for n in tree.k_nearest(query, 3)]
        assert actual == pytest.approx(expected)
