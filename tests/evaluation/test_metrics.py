"""Tests for the precision/recall metrics of Section IV-B."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.evaluation import (
    PrecisionRecall,
    average_precision_recall,
    evaluate_retrieval,
    f1_score,
    precision,
    recall,
)

item_sets = st.sets(st.integers(min_value=0, max_value=30), max_size=15)


class TestPrecisionRecall:
    def test_paper_formulae(self):
        retrieved = {"a", "b", "c", "d"}
        expected = {"b", "c", "e"}
        assert precision(retrieved, expected) == pytest.approx(2 / 4)
        assert recall(retrieved, expected) == pytest.approx(2 / 3)

    def test_perfect_retrieval(self):
        assert evaluate_retrieval({"a"}, {"a"}) == PrecisionRecall(1.0, 1.0)

    def test_disjoint_retrieval(self):
        result = evaluate_retrieval({"a"}, {"b"})
        assert result.precision == 0.0 and result.recall == 0.0
        assert result.f1 == 0.0

    def test_empty_retrieved_set_convention(self):
        assert precision([], {"a"}) == 1.0
        assert recall([], {"a"}) == 0.0

    def test_empty_expected_set_convention(self):
        assert recall({"a"}, []) == 1.0

    def test_f1_is_harmonic_mean(self):
        value = f1_score({"a", "b"}, {"b", "c"})
        assert value == pytest.approx(2 * 0.5 * 0.5 / (0.5 + 0.5))

    @given(retrieved=item_sets, expected=item_sets)
    @settings(max_examples=80)
    def test_property_metrics_in_unit_interval(self, retrieved, expected):
        result = evaluate_retrieval(retrieved, expected)
        assert 0.0 <= result.precision <= 1.0
        assert 0.0 <= result.recall <= 1.0
        assert 0.0 <= result.f1 <= 1.0

    @given(expected=item_sets)
    @settings(max_examples=40)
    def test_property_retrieving_exactly_the_truth_is_perfect(self, expected):
        result = evaluate_retrieval(set(expected), set(expected))
        assert result.precision == 1.0 and result.recall == 1.0


class TestAveraging:
    def test_macro_average(self):
        results = [PrecisionRecall(1.0, 0.5), PrecisionRecall(0.0, 1.0)]
        averaged = average_precision_recall(results)
        assert averaged.precision == pytest.approx(0.5)
        assert averaged.recall == pytest.approx(0.75)

    def test_empty_list_rejected(self):
        with pytest.raises(EvaluationError):
            average_precision_recall([])
