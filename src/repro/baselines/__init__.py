"""Baselines: exhaustive linear scans (embedded-space and raw semantic) and the
sequential single-partition KD-tree adapter."""

from repro.baselines.linear_scan import LinearScanIndex, SemanticLinearScan
from repro.baselines.sequential_adapter import SequentialKDTreeBaseline

__all__ = [
    "LinearScanIndex",
    "SemanticLinearScan",
    "SequentialKDTreeBaseline",
]
