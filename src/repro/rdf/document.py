"""Document model.

The paper's unit of retrieval is the *document*: a textual artefact whose
semantics is "effectively expressed by a set of (subject, predicate, object)
statements".  :class:`Document` couples an identifier, the original text
(optional — the paper scopes out the text-to-triple conversion) and the
ordered list of triples that represent its semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List

from repro.errors import TripleError
from repro.rdf.triple import Triple, TriplePattern

__all__ = ["Document", "DocumentCollection"]


@dataclass
class Document:
    """A document together with its semantic representation (a list of triples).

    The triple list is ordered: the paper notes that the order reflects the
    temporal sequence of the requirement elements.
    """

    document_id: str
    triples: List[Triple] = field(default_factory=list)
    text: str = ""
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.document_id:
            raise TripleError("a Document requires a non-empty identifier")

    def add_triple(self, triple: Triple) -> None:
        """Append a triple to the document's semantic representation."""
        self.triples.append(triple)

    def match(self, pattern: TriplePattern) -> List[Triple]:
        """Return the document triples matching a pattern, in order."""
        return [triple for triple in self.triples if pattern.matches(triple)]

    def __len__(self) -> int:
        return len(self.triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self.triples)

    def __repr__(self) -> str:
        return f"Document(id={self.document_id!r}, triples={len(self.triples)})"


class DocumentCollection:
    """An ordered collection of documents, addressable by identifier."""

    def __init__(self, documents: Iterable[Document] | None = None):
        self._documents: Dict[str, Document] = {}
        if documents:
            for document in documents:
                self.add(document)

    def add(self, document: Document) -> None:
        """Add a document; re-adding the same identifier replaces it."""
        self._documents[document.document_id] = document

    def get(self, document_id: str) -> Document:
        """Return the document with the given identifier.

        Raises
        ------
        KeyError
            If the identifier is unknown.
        """
        return self._documents[document_id]

    def __contains__(self, document_id: str) -> bool:
        return document_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def all_triples(self) -> List[tuple[str, Triple]]:
        """Return every ``(document_id, triple)`` pair in document order."""
        pairs: List[tuple[str, Triple]] = []
        for document in self:
            pairs.extend((document.document_id, triple) for triple in document)
        return pairs

    def total_triples(self) -> int:
        """Total number of triples across all documents (with repetitions)."""
        return sum(len(document) for document in self)

    def __repr__(self) -> str:
        return (
            f"DocumentCollection(documents={len(self)}, triples={self.total_triples()})"
        )
