#!/usr/bin/env python3
"""CI chaos smoke: kill/restart real shard replicas under load, stay exact.

Boots the acceptance deployment — two ``python -m repro.server --shard``
replica processes per data partition plus a ``python -m repro.coordinator``
— and then misbehaves at it, asserting after every stage that availability
held and that every answered query carried *exactly* the single-server
baseline's distances (replication must never change an answer):

1. **Flaky replica** — one replica of one partition is launched with a
   ``$REPRO_FAULTS`` plan injecting HTTP 503 into ~35% of its scans.  The
   coordinator's retry/failover must absorb every injected failure:
   availability 100%, ``retries`` counted in ``/v1/metrics``.
2. **Crash** — a different partition's primary replica is SIGKILLed
   mid-workload.  Zero failed queries (the survivor serves), the dead
   replica's circuit opens, ``/v1/healthz`` reports the partition at one
   healthy replica.
3. **Restart** — the killed replica is relaunched on its old port; under
   light query load the half-open probe must readmit it and ``/v1/healthz``
   must return to two healthy replicas.
4. **Overload** — a second coordinator with ``--max-queue-depth 2`` sheds
   a 4-query batch with 503 + ``Retry-After`` while a single query still
   answers, and the shed lands in the admission counters and the
   Prometheus exposition.

Exit status 0 on success, 1 with one line per failure — what the CI
chaos-smoke job keys off.  Run from the repository root::

    PYTHONPATH=src python tools/chaos_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import time
import urllib.parse
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.coordinator import launch_coordinator, launch_shard, shutdown_processes
from repro.core import SemTreeConfig, SemTreeIndex
from repro.errors import ServerError
from repro.ingest import IngestingIndex
from repro.requirements import (
    GeneratorConfig,
    RequirementsGenerator,
    build_requirement_distance,
    build_requirement_vocabularies,
)
from repro.server import create_server, ServerApp
from repro.server.bootstrap import vocabulary_hints
from repro.workloads import ServerClient, query_payloads

#: The flaky replica's server-side fault plan: deterministic (seeded) 503s
#: on roughly a third of its partition scans, nothing else.
FLAKY_PLAN = json.dumps({
    "seed": 23,
    "faults": [{"operation": "handle", "target": "/v1/shard/",
                "kind": "http_5xx", "status": 503, "probability": 0.35}],
})

CLIENT_THREADS = 4
STAGE_REQUESTS = 48
RECOVERY_TIMEOUT = 30.0


def build_corpus(tmp_dir: Path):
    """The requirements corpus, indexed, checkpointed, with its oracle."""
    corpus = RequirementsGenerator(GeneratorConfig(
        documents=5, requirements_per_document=4, sentences_per_requirement=2,
        actors=8, seed=11,
    )).generate()
    vocabularies = build_requirement_vocabularies(
        corpus.actor_names, corpus.parameter_values)
    index = SemTreeIndex(
        build_requirement_distance(vocabularies),
        SemTreeConfig(dimensions=3, bucket_size=4, max_partitions=4,
                      partition_capacity=16))
    triples = []
    for document in corpus.documents:
        rdf_document = document.to_rdf_document()
        triples.extend(rdf_document.triples)
        index.add_document(rdf_document)
    index.build()
    actors, parameters = vocabulary_hints(triples)
    live = IngestingIndex(
        index, tmp_dir / "wal.jsonl",
        vocabulary_hints={"actors": actors, "parameters": parameters})
    snapshot = tmp_dir / "snapshot.json"
    live.checkpoint(snapshot)
    live.close()
    partitions = [p.partition_id for p in index.tree.partitions
                  if p.point_count > 0]
    return index, triples, snapshot, partitions


def oracle_answers(index, tmp_dir: Path, workloads) -> List[List[List[float]]]:
    """Every stage workload answered by one in-process server (the oracle)."""
    live = IngestingIndex(index, tmp_dir / "oracle-wal.jsonl")
    app = ServerApp(live, workers=2, background_compaction=False)
    answers = []
    with create_server(app).serve_background() as server:
        with ServerClient(server.url) as client:
            for payloads in workloads:
                answers.append([
                    [round(m["distance"], 9)
                     for m in client.request("POST", path, body)["matches"]]
                    for path, body in payloads
                ])
    return answers


def run_stage(url: str, payloads, expected,
              *, mid_run_hook=None) -> Tuple[float, List[str]]:
    """Replay a workload from CLIENT_THREADS clients, checking every answer.

    Returns ``(availability, problems)``; ``mid_run_hook`` (the crash) runs
    on the main thread after the first half of the workload, so queries
    provably continue past it.
    """
    problems: List[str] = []
    lock = threading.Lock()
    succeeded = 0

    def replay(indices: List[int]) -> None:
        nonlocal succeeded
        client = ServerClient(url, timeout=30.0)
        try:
            for position in indices:
                path, body = payloads[position]
                try:
                    reply = client.request("POST", path, body)
                except Exception as error:  # noqa: BLE001 - the availability metric
                    with lock:
                        problems.append(
                            f"request {position} ({path}) failed: {error}")
                    continue
                got = [round(m["distance"], 9) for m in reply["matches"]]
                if got != expected[position]:
                    with lock:
                        problems.append(
                            f"request {position} ({path}) answered "
                            f"{got} instead of {expected[position]}")
                    continue
                with lock:
                    succeeded += 1
        finally:
            client.close()

    def run_half(indices: List[int]) -> None:
        shards: List[List[int]] = [[] for _ in range(CLIENT_THREADS)]
        for order, position in enumerate(indices):
            shards[order % CLIENT_THREADS].append(position)
        threads = [threading.Thread(target=replay, args=(shard,))
                   for shard in shards if shard]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    half = len(payloads) // 2
    run_half(list(range(half)))
    if mid_run_hook is not None:
        mid_run_hook()
    run_half(list(range(half, len(payloads))))
    return succeeded / len(payloads), problems


def port_of(url: str) -> int:
    return urllib.parse.urlsplit(url).port


def run_chaos() -> List[str]:
    problems: List[str] = []
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        tmp_dir = Path(tmp)
        index, triples, snapshot, partitions = build_corpus(tmp_dir)
        if len(partitions) < 2:
            return [f"corpus built only {len(partitions)} data partitions"]
        flaky_partition, crash_partition = partitions[0], partitions[1]

        # Distinct payloads per stage (repeat_fraction=0, fresh seeds): a
        # coordinator cache hit runs no scatter, and a masked scatter would
        # make the whole exercise vacuous.
        workloads = [
            query_payloads(triples, STAGE_REQUESTS, k=3, radius=0.15,
                           repeat_fraction=0.0, seed=100 + stage)
            for stage in range(4)
        ]
        expected = oracle_answers(index, tmp_dir, workloads)

        fleet: Dict[str, List] = {}
        processes = []
        try:
            for partition_id in partitions:
                env = None
                if partition_id == flaky_partition:
                    env = {**os.environ, "REPRO_FAULTS": FLAKY_PLAN}
                primary = launch_shard(snapshot, partition_id, env=env)
                secondary = launch_shard(snapshot, partition_id)
                fleet[partition_id] = [primary, secondary]
                processes.extend([primary, secondary])
            shards = {pid: [managed.url for managed in group]
                      for pid, group in fleet.items()}
            coordinator = launch_coordinator(
                snapshot, shards,
                extra_args=["--failure-threshold", "3",
                            "--reset-timeout", "1"])
            processes.append(coordinator)

            # Stage 1: the flaky replica's injected 503s are absorbed.
            availability, stage_problems = run_stage(
                coordinator.url, workloads[0], expected[0])
            problems.extend(stage_problems)
            if availability < 1.0:
                problems.append(
                    f"stage 1 availability {availability:.3f} < 1.0 "
                    "with a healthy replica present")
            with ServerClient(coordinator.url) as client:
                failover = client.metrics()["shards"]["failover"]
            if failover[flaky_partition]["retries"] < 1:
                problems.append(
                    "stage 1: no retries counted — the fault plan never "
                    f"fired ({failover[flaky_partition]})")

            # Stage 2: SIGKILL the crash partition's primary mid-workload.
            victim = fleet[crash_partition][0]
            victim_port = port_of(victim.url)
            availability, stage_problems = run_stage(
                coordinator.url, workloads[1], expected[1],
                mid_run_hook=victim.kill)
            problems.extend(stage_problems)
            if availability < 1.0:
                problems.append(
                    f"stage 2 availability {availability:.3f} < 1.0 "
                    "after killing one of two replicas")
            with ServerClient(coordinator.url) as client:
                metrics = client.metrics()
                health = client.health()
            crashed = metrics["shards"]["failover"][crash_partition]
            if crashed["retries"] < 1:
                problems.append(f"stage 2: the crash cost no retries ({crashed})")
            if crashed["circuit_opens"] < 1:
                problems.append(
                    f"stage 2: the dead replica's circuit never opened ({crashed})")
            partition_health = health["partitions"][crash_partition]
            if partition_health["healthy"] > 1:
                problems.append(
                    f"stage 2: healthz still counts the dead replica "
                    f"({partition_health})")

            # Stage 3: restart on the old port; probes must readmit it.
            fleet[crash_partition][0] = launch_shard(
                snapshot, crash_partition, port=victim_port)
            processes.append(fleet[crash_partition][0])
            recovered = False
            deadline = time.monotonic() + RECOVERY_TIMEOUT
            with ServerClient(coordinator.url) as client:
                probe_payloads = iter(workloads[2] * 10)
                while time.monotonic() < deadline:
                    path, body = next(probe_payloads)
                    try:
                        client.request("POST", path, body)
                    except ServerError:
                        pass  # a half-open probe losing the race is fine
                    entry = client.health()["partitions"][crash_partition]
                    if entry["healthy"] == 2 and entry["open"] == 0:
                        recovered = True
                        break
                    time.sleep(0.25)
            if not recovered:
                problems.append(
                    f"stage 3: restarted replica not readmitted within "
                    f"{RECOVERY_TIMEOUT:.0f}s")
            availability, stage_problems = run_stage(
                coordinator.url, workloads[2], expected[2])
            problems.extend(stage_problems)
            if availability < 1.0:
                problems.append(
                    f"stage 3 availability {availability:.3f} < 1.0 "
                    "after the replica rejoined")

            # Stage 4: overload a second coordinator; it must shed, not die.
            throttled = launch_coordinator(
                snapshot, shards, extra_args=["--max-queue-depth", "2"])
            processes.append(throttled)
            with ServerClient(throttled.url) as client:
                batch = [body for path, body in workloads[3]
                         if path == "/v1/knn"][:4]
                try:
                    client.knn_batch(batch)
                    problems.append(
                        "stage 4: a 4-query batch slipped past queue depth 2")
                except ServerError as error:
                    if error.status != 503:
                        problems.append(
                            f"stage 4: shed with {error.status}, wanted 503")
                    if error.kind != "AdmissionError":
                        problems.append(
                            f"stage 4: shed kind {error.kind!r}, wanted "
                            "'AdmissionError'")
                    if error.retry_after is None:
                        problems.append("stage 4: no Retry-After header on 503")
                path, body = workloads[3][0]
                reply = client.request("POST", path, body)
                got = [round(m["distance"], 9) for m in reply["matches"]]
                if got != expected[3][0]:
                    problems.append(
                        "stage 4: the admitted query answered wrongly under "
                        "overload")
                admission = client.metrics()["coordinator"]["admission"]
                if admission["shed"].get("queue_full", 0) < 1:
                    problems.append(
                        f"stage 4: shed not counted ({admission['shed']})")
                exposition = client.metrics_prometheus()
                if "repro_requests_shed_total" not in exposition:
                    problems.append(
                        "stage 4: repro_requests_shed_total missing from "
                        "the exposition")
        finally:
            shutdown_processes(processes)
    return problems


def main() -> int:
    problems = run_chaos()
    for problem in problems:
        print(f"chaos smoke: {problem}", file=sys.stderr)
    if not problems:
        print("chaos smoke: injected 503s absorbed, replica crash survived "
              "with 100% availability and exact answers, restarted replica "
              "readmitted, overload shed with 503 + Retry-After")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
