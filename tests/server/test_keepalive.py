"""ServerClient keep-alive: connection reuse, stale-socket retry, shutdown."""

from __future__ import annotations

import threading

import pytest

from server_corpus import BASE_TRIPLES, QUERY_TRIPLES
from repro.errors import ServerError


def test_requests_reuse_one_connection(make_server):
    _, client = make_server()
    for _ in range(3):
        client.health()
    connection = client._local.connection
    assert connection is not None
    assert client._local.served == 3
    client.knn(QUERY_TRIPLES[0], 3)
    # Still the same socket: POSTs and GETs share the persistent connection.
    assert client._local.connection is connection
    assert client._local.served == 4


def test_connections_are_per_thread(make_server):
    _, client = make_server()
    client.health()
    main_connection = client._local.connection
    seen = {}

    def worker():
        client.health()
        seen["connection"] = client._local.connection

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    assert seen["connection"] is not main_connection
    assert client._local.connection is main_connection


def test_close_drops_only_this_threads_connection(make_server):
    _, client = make_server()
    client.health()
    assert client._local.connection is not None
    client.close()
    assert client._local.connection is None
    # And the client transparently reconnects afterwards.
    assert client.health()["status"] == "ok"


def test_stale_keepalive_socket_is_retried_once(make_server):
    """A server-side connection drop between requests must be invisible."""
    server, client = make_server()
    assert client.health()["status"] == "ok"
    # Shut the server side of every idle keep-alive socket, simulating an
    # idle-timeout or a rolling restart closing connections under us.
    server._close_idle_connections()
    # The next request hits the dead socket, retries on a fresh connection
    # and succeeds without surfacing an error.
    assert client.health()["status"] == "ok"


def test_fresh_connection_failure_is_not_retried(make_server):
    server, client = make_server()
    server.close(checkpoint=False)
    with pytest.raises(ServerError):
        client.health()


def test_keepalive_responses_stay_correct_under_reuse(make_server):
    """A burst of mixed requests down one socket: framing never desyncs."""
    _, client = make_server()
    for round_ in range(5):
        result = client.knn(QUERY_TRIPLES[round_ % len(QUERY_TRIPLES)], 3)
        assert result["error"] is None and len(result["matches"]) == 3
        insert = client.insert(BASE_TRIPLES[0])
        assert insert["seq"] >= 1
        assert client.health()["status"] == "ok"
    assert client._local.served == 15
