"""``python -m repro.coordinator`` — the scatter-gather front end.

Boot sequence:

1. the checkpoint snapshot is parsed once; the semantic distance is rebuilt
   from its persisted vocabulary hints (or harvested) and the full index is
   loaded — the coordinator needs the FastMap space (query embedding), the
   routing tree (partition pruning) and the provenance map;
2. the shard topology is read (``--shards`` inline or ``--topology`` JSON
   file) and every data-bearing partition is checked to be covered; unless
   ``--skip-shard-check``, each shard's ``/v1/shard`` is probed to confirm
   it serves the partition the topology claims;
3. a :class:`~repro.coordinator.app.CoordinatorApp` (query engine over the
   :class:`~repro.coordinator.sharded.ShardedIndex`) is bound to the HTTP
   transport chosen by ``--transport`` (the :mod:`selectors` event loop by
   default, or thread-per-connection with ``--transport threaded``);
4. SIGINT/SIGTERM drain in-flight queries and close the shard connections.

Example::

    python -m repro.server --snapshot snap.json --shard P0 --port 9000 &
    python -m repro.server --snapshot snap.json --shard P1 --port 9001 &
    python -m repro.coordinator --snapshot snap.json \
        --shards "P0=http://127.0.0.1:9000,P1=http://127.0.0.1:9001" --port 8080

See ``docs/cluster.md`` for the full deployment story.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence, Tuple

from repro.coordinator.app import CoordinatorApp
from repro.coordinator.sharded import ShardedIndex
from repro.coordinator.topology import ShardTopology
from repro.coordinator.transport import HttpShardTransport
from repro.errors import ShardError
from repro.obs.logging import configure_logging
from repro.obs.profile import SamplingProfiler
from repro.server.__main__ import ServerLike, _fault_plan, _serve_until_signalled
from repro.server.bootstrap import derive_distance_from_state
from repro.server.factory import TRANSPORTS, create_server
from repro.service.snapshot import load_index_payload, read_snapshot_payload
from repro.workloads.http_client import ServerClient

__all__ = ["build_parser", "build_coordinator", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.coordinator",
        description="Serve a SemTree index by scattering partition scans "
                    "across per-partition shard servers.",
    )
    parser.add_argument("--snapshot", required=True,
                        help="checkpoint snapshot (the same one the shards booted "
                             "from); provides embedding, routing tree and provenance")
    parser.add_argument("--shards", default=None,
                        help="inline topology: P0=http://host:port,P1=...")
    parser.add_argument("--topology", default=None,
                        help="topology JSON file ({\"P0\": \"http://...\", ...})")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8080,
                        help="bind port (0 picks an ephemeral port)")
    parser.add_argument("--transport", choices=TRANSPORTS, default=None,
                        help="HTTP front end: the selectors event loop "
                             "('async', the default) or thread-per-connection "
                             "('threaded'); default honours $REPRO_TRANSPORT")
    parser.add_argument("--idle-timeout", type=float, default=None,
                        help="async transport: drop keep-alive connections "
                             "idle this many seconds (default: the request "
                             "timeout)")
    parser.add_argument("--transport-workers", type=int, default=8,
                        help="async transport: dispatch worker threads")
    parser.add_argument("--workers", type=int, default=4,
                        help="query-engine worker threads")
    parser.add_argument("--scatter-workers", type=int, default=8,
                        help="concurrent partition scans across all queries")
    parser.add_argument("--shard-timeout", type=float, default=10.0,
                        help="per-scan HTTP timeout in seconds")
    parser.add_argument("--failure-threshold", type=int, default=3,
                        help="consecutive scan failures that open a replica's "
                             "circuit breaker")
    parser.add_argument("--reset-timeout", type=float, default=5.0,
                        help="seconds an open circuit waits before letting one "
                             "probe scan through")
    parser.add_argument("--hedge-delay", type=float, default=None,
                        help="send a duplicate scan to another replica when the "
                             "first takes longer than this many seconds "
                             "(default: no hedging)")
    parser.add_argument("--cache-capacity", type=int, default=1024,
                        help="result-cache entries")
    parser.add_argument("--cache-ttl", type=float, default=None,
                        help="result-cache TTL in seconds (default: no expiry)")
    parser.add_argument("--cache-segmented", action="store_true",
                        help="use SLRU (probationary/protected) cache admission")
    parser.add_argument("--default-deadline", type=float, default=None,
                        help="per-query deadline in seconds applied when a request "
                             "carries none")
    parser.add_argument("--actors", default="",
                        help="comma-separated extra actor names (as for the full "
                             "server; must match what the snapshot writer used)")
    parser.add_argument("--skip-shard-check", action="store_true",
                        help="do not probe each shard's /v1/shard at boot")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        help="log executed queries slower than this many "
                             "milliseconds as structured JSON on repro.slow_query "
                             "(default: REPRO_SLOW_QUERY_MS, unset = disabled)")
    parser.add_argument("--profile", action="store_true",
                        help="run a continuous sampling profiler; read it back "
                             "at GET /v1/debug/profile")
    parser.add_argument("--max-queue-depth", type=int, default=None,
                        help="admission control: reject queries with 503 + "
                             "Retry-After once this many are outstanding in the "
                             "engine (default: unbounded)")
    parser.add_argument("--client-rate", type=float, default=None,
                        help="admission control: per-client (X-Client-Id header) "
                             "sustained queries/second (default: unlimited)")
    parser.add_argument("--client-burst", type=int, default=10,
                        help="per-client token-bucket burst size (with "
                             "--client-rate)")
    parser.add_argument("--faults", default=None,
                        help="fault-injection plan: JSON text or a path to a "
                             "JSON file (default: $REPRO_FAULTS; testing only)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-request log lines")
    return parser


def _check_shards(topology: ShardTopology, timeout: float) -> None:
    """Probe every replica once: reachable, and serving the claimed partition."""
    for partition_id in topology.partition_ids:
        for url in topology.replicas_of(partition_id):
            with ServerClient(url, timeout=timeout) as client:
                client.wait_ready()
                info = client.shard_info()
            served = info.get("partition_id")
            if served != partition_id:
                raise ShardError(
                    f"topology mismatch: {url} serves partition {served!r}, "
                    f"the topology maps it to {partition_id!r}",
                    failed={partition_id: f"shard serves {served!r}"},
                )


def build_coordinator(argv: Optional[Sequence[str]] = None,
                      ) -> Tuple[ServerLike, argparse.Namespace]:
    """Parse arguments, load the snapshot, return a bound (not serving) server."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if (args.shards is None) == (args.topology is None):
        parser.error("exactly one of --shards / --topology is required")
    topology = (ShardTopology.parse(args.shards) if args.shards is not None
                else ShardTopology.from_file(args.topology))
    if not args.skip_shard_check:
        _check_shards(topology, args.shard_timeout)

    payload = read_snapshot_payload(args.snapshot)
    extra_actors = [name.strip() for name in args.actors.split(",") if name.strip()]
    distance, _ = derive_distance_from_state(payload, extra_actors=extra_actors)
    base = load_index_payload(payload, distance)

    # One plan poisons both sides the coordinator owns: its scan transport
    # ("scan" operations) and its own HTTP surface ("handle" operations).
    fault_plan = _fault_plan(args)
    transport = HttpShardTransport(
        topology, timeout=args.shard_timeout,
        failure_threshold=args.failure_threshold,
        reset_timeout=args.reset_timeout,
        hedge_delay=args.hedge_delay,
        fault_plan=fault_plan,
    )
    index = ShardedIndex(base, transport, scatter_workers=args.scatter_workers)
    app = CoordinatorApp(
        index,
        workers=args.workers,
        cache_capacity=args.cache_capacity,
        cache_ttl=args.cache_ttl,
        cache_segmented=args.cache_segmented,
        default_deadline=args.default_deadline,
        slow_query_ms=args.slow_query_ms,
        profiler=SamplingProfiler().start() if args.profile else None,
        max_queue_depth=args.max_queue_depth,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
    )
    server = create_server(
        app, transport=args.transport, host=args.host, port=args.port,
        quiet=args.quiet, fault_plan=fault_plan,
        idle_timeout=args.idle_timeout,
        transport_workers=args.transport_workers,
        # Shard data changes under the coordinator without any local epoch
        # signal, so loop-side byte caching is never safe here (and
        # CoordinatorApp exposes no cacheable routes).
        wire_cache=False,
    )
    return server, args


def main(argv: Optional[Sequence[str]] = None) -> int:
    server, args = build_coordinator(argv)
    # Configured here, not in build_coordinator, so embedding the builder
    # (tests, notebooks) never rewires the process's logging.
    configure_logging(level=30 if args.quiet else 20)
    app = server.app
    tree = app.index.base.tree
    print(f"coordinating {len(app.index.base)} points over "
          f"{len(app.index.transport.partition_ids())} shards "
          f"({tree.partition_count} partitions in the snapshot)", flush=True)
    return _serve_until_signalled(server, args)


if __name__ == "__main__":
    sys.exit(main())
