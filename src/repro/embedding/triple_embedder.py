"""Glue between the triple distance and FastMap: embedding triples as points.

:class:`TripleEmbedder` owns a :class:`~repro.semantics.triple_distance.TripleDistance`
and a :class:`~repro.embedding.fastmap.FastMap`, fits the vector space over
a corpus of triples, and projects query triples into that space at query
time.  This is exactly the "mapping of triples in a vectorial space by means
of the definition of a proper semantic distance between triples" of the
paper, packaged as one reusable component so that the SemTree facade does
not need to know about pivots or residual distances.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.embedding.fastmap import FastMap, FastMapSpace
from repro.errors import EmbeddingError
from repro.rdf.triple import Triple
from repro.semantics.triple_distance import TripleDistance

__all__ = ["TripleEmbedder"]


class TripleEmbedder:
    """Embeds triples into a k-dimensional space with FastMap.

    Parameters
    ----------
    triple_distance:
        The semantic distance of Eq. (1) used as FastMap's distance oracle.
    dimensions:
        Target dimensionality of the vector space.
    seed:
        Seed for FastMap's pivot selection (reproducibility).
    """

    def __init__(self, triple_distance: TripleDistance, *, dimensions: int = 4,
                 seed: int | None = 0):
        self.triple_distance = triple_distance
        self.dimensions = dimensions
        self._fastmap: FastMap[Triple] = FastMap(
            triple_distance, dimensions=dimensions, seed=seed
        )
        self._space: Optional[FastMapSpace[Triple]] = None

    # -- fitting --------------------------------------------------------------------

    def fit(self, triples: Sequence[Triple]) -> FastMapSpace[Triple]:
        """Fit the vector space over a corpus of triples."""
        self._space = self._fastmap.fit(list(triples))
        return self._space

    def restore(self, space: FastMapSpace[Triple]) -> None:
        """Adopt an already-fitted space (snapshot warm start).

        Out-of-sample projection only needs the stored pivots and the
        distance oracle, so a deserialised space behaves exactly like a
        freshly fitted one.
        """
        self._space = space

    @property
    def space(self) -> FastMapSpace[Triple]:
        """The fitted space.

        Raises
        ------
        EmbeddingError
            If :meth:`fit` has not been called yet.
        """
        if self._space is None:
            raise EmbeddingError("TripleEmbedder.fit must be called before using the space")
        return self._space

    @property
    def is_fitted(self) -> bool:
        """True when a vector space has been fitted."""
        return self._space is not None

    @property
    def output_dimensions(self) -> int:
        """Dimensionality of the fitted space (may be lower than requested)."""
        return self.space.dimensions

    # -- transforming ------------------------------------------------------------------

    def transform(self, triple: Triple) -> np.ndarray:
        """Coordinates of one triple (in-sample lookup or out-of-sample projection)."""
        space = self.space
        if triple in space:
            return space.coordinates_of(triple).copy()
        return self._fastmap.project(triple, space)

    def transform_many(self, triples: Iterable[Triple]) -> np.ndarray:
        """Coordinates for many triples, stacked in a ``(n, dims)`` array."""
        rows = [self.transform(triple) for triple in triples]
        if not rows:
            return np.empty((0, self.output_dimensions))
        return np.vstack(rows)

    def fit_transform(self, triples: Sequence[Triple]) -> np.ndarray:
        """Fit the space and return the coordinates of the fitted triples."""
        space = self.fit(triples)
        return space.coordinates.copy()

    def embedded_pairs(self) -> List[tuple[Triple, np.ndarray]]:
        """Return ``(triple, coordinates)`` pairs of the fitted corpus, in input order."""
        space = self.space
        return [
            (triple, space.coordinates[index].copy())
            for index, triple in enumerate(space.objects)
        ]

    def __repr__(self) -> str:
        fitted = len(self._space) if self._space is not None else 0
        return (
            f"TripleEmbedder(dimensions={self.dimensions}, fitted_triples={fitted})"
        )
