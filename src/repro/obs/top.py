"""``python -m repro.obs.top`` — a live terminal view over ``/v1/history``.

Polls any node's ``GET /v1/history`` endpoint (server, shard or
coordinator — they all expose the same ring buffer) and redraws a compact
dashboard: the latest window's headline numbers plus a table of the most
recent windows.  Pure ANSI — no curses, so it works inside CI logs, dumb
terminals and ``script(1)`` captures alike.

:func:`render_dashboard` is a pure function from the history payload to
the text frame, which is what the tests exercise; the polling loop around
it is deliberately thin.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["fetch_history", "main", "render_dashboard"]

#: ANSI: clear the screen and home the cursor (one frame replaces the last).
_CLEAR = "\x1b[2J\x1b[H"

#: Rows of recent windows shown under the headline block.
_TABLE_ROWS = 12


def fetch_history(url: str, timeout: float = 5.0) -> Dict[str, Any]:
    """GET ``{url}/v1/history`` and return the decoded payload."""
    target = url.rstrip("/") + "/v1/history"
    with urllib.request.urlopen(target, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _fmt(value: Optional[float], pattern: str = "{:.1f}", none: str = "-") -> str:
    return pattern.format(value) if value is not None else none


def _clock(ts: Optional[float]) -> str:
    if ts is None:
        return "--:--:--"
    return time.strftime("%H:%M:%S", time.localtime(ts))


def render_dashboard(payload: Dict[str, Any], *, source: str = "") -> str:
    """One text frame of the dashboard for a ``/v1/history`` payload."""
    entries: List[Dict[str, Any]] = payload.get("entries", [])
    interval = payload.get("interval_seconds")
    lines: List[str] = []
    title = "repro top"
    if source:
        title += f" — {source}"
    if interval is not None:
        title += f"  (window {interval:g}s, {len(entries)} recorded)"
    lines.append(title)
    lines.append("=" * len(title))

    if not entries:
        lines.append("no history entries yet — the first window has not closed")
        return "\n".join(lines) + "\n"

    latest = entries[-1]
    lines.append(
        f"qps {_fmt(latest.get('qps'))}   "
        f"p50 {_fmt(latest.get('p50_ms'))} ms   "
        f"p99 {_fmt(latest.get('p99_ms'))} ms   "
        f"cache {_fmt(latest.get('cache_hit_rate'), '{:.0%}')}   "
        f"queue {_fmt(latest.get('queue_wait_ms'), '{:.2f}')} ms   "
        f"fan-out {_fmt(latest.get('fan_out'))}"
    )
    lines.append("")
    header = (f"{'time':>8}  {'qps':>8}  {'p50 ms':>8}  {'p99 ms':>8}  "
              f"{'cache':>6}  {'queue ms':>8}  {'dist comps':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    for entry in entries[-_TABLE_ROWS:]:
        lines.append(
            f"{_clock(entry.get('ts')):>8}  "
            f"{_fmt(entry.get('qps')):>8}  "
            f"{_fmt(entry.get('p50_ms')):>8}  "
            f"{_fmt(entry.get('p99_ms')):>8}  "
            f"{_fmt(entry.get('cache_hit_rate'), '{:.0%}'):>6}  "
            f"{_fmt(entry.get('queue_wait_ms'), '{:.2f}'):>8}  "
            f"{int(entry.get('distance_computations') or 0):>10}"
        )
    return "\n".join(lines) + "\n"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.top",
        description="Live terminal dashboard over a node's /v1/history.",
    )
    parser.add_argument("--url", required=True,
                        help="base URL of any node (server, shard, coordinator)")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between polls (default 2)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="stop after this many frames (default: run forever)")
    parser.add_argument("--no-clear", action="store_true",
                        help="append frames instead of redrawing (for logs/CI)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    frames = 0
    try:
        while args.iterations is None or frames < args.iterations:
            try:
                payload = fetch_history(args.url)
                frame = render_dashboard(payload, source=args.url)
            except (urllib.error.URLError, OSError, ValueError) as error:
                frame = f"repro top — {args.url}\ncannot fetch history: {error}\n"
            if not args.no_clear:
                sys.stdout.write(_CLEAR)
            sys.stdout.write(frame)
            sys.stdout.flush()
            frames += 1
            if args.iterations is not None and frames >= args.iterations:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
