"""Tests for leaf-splitting strategies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LabeledPoint, SplitStrategy, choose_split, partition_bucket
from repro.errors import IndexError_


def points_of(*coords):
    return [LabeledPoint.of(c) for c in coords]


class TestPartitionBucket:
    def test_points_at_the_split_value_go_left(self):
        points = points_of((0.5, 0.0), (0.2, 0.0), (0.9, 0.0))
        left, right = partition_bucket(points, 0, 0.5)
        assert {p[0] for p in left} == {0.5, 0.2}
        assert {p[0] for p in right} == {0.9}


class TestChooseSplit:
    def test_median_split_balances_points(self):
        points = points_of(*[(i / 9.0, 0.0) for i in range(10)])
        decision = choose_split(points, depth=0, dimensions=2, strategy=SplitStrategy.MEDIAN)
        assert decision.split_index == 0
        assert abs(len(decision.left_points) - len(decision.right_points)) <= 2
        assert len(decision.left_points) + len(decision.right_points) == 10

    def test_depth_cycles_the_dimension(self):
        points = points_of((0.0, 0.1), (0.0, 0.9), (0.0, 0.4), (0.0, 0.6))
        decision = choose_split(points, depth=1, dimensions=2)
        assert decision.split_index == 1

    def test_max_spread_picks_widest_dimension(self):
        points = points_of((0.0, 0.0), (0.01, 1.0), (0.02, 0.5), (0.03, 0.2))
        decision = choose_split(points, depth=0, dimensions=2,
                                strategy=SplitStrategy.MAX_SPREAD)
        assert decision.split_index == 1

    def test_midpoint_split_value(self):
        points = points_of((0.0,), (1.0,), (0.2,), (0.4,))
        decision = choose_split(points, depth=0, dimensions=1,
                                strategy=SplitStrategy.MIDPOINT)
        assert decision.split_value == pytest.approx(0.5)

    def test_first_point_strategy_degenerates_on_sorted_input(self):
        points = points_of((0.1,), (0.2,), (0.3,), (0.4,))
        decision = choose_split(points, depth=0, dimensions=1,
                                strategy=SplitStrategy.FIRST_POINT)
        assert decision.split_value == pytest.approx(0.1)
        assert len(decision.left_points) == 1
        assert len(decision.right_points) == 3

    def test_never_produces_an_empty_side_when_splittable(self):
        # All values equal on dimension 0; dimension 1 separates them.
        points = points_of((0.5, 0.1), (0.5, 0.9), (0.5, 0.4))
        decision = choose_split(points, depth=0, dimensions=2)
        assert decision.left_points and decision.right_points

    def test_identical_points_cannot_be_split(self):
        points = points_of((0.5, 0.5), (0.5, 0.5), (0.5, 0.5))
        with pytest.raises(IndexError_):
            choose_split(points, depth=0, dimensions=2)

    def test_fewer_than_two_points_rejected(self):
        with pytest.raises(IndexError_):
            choose_split(points_of((0.1,)), depth=0, dimensions=1)

    @given(values=st.lists(st.floats(min_value=0, max_value=1, allow_nan=False),
                           min_size=2, max_size=30),
           strategy=st.sampled_from(list(SplitStrategy)))
    @settings(max_examples=100, deadline=None)
    def test_property_split_is_a_partition(self, values, strategy):
        # Skip inputs where every value is identical (unsplittable by design).
        if len(set(values)) < 2:
            return
        points = points_of(*[(value,) for value in values])
        decision = choose_split(points, depth=0, dimensions=1, strategy=strategy)
        left, right = decision.left_points, decision.right_points
        assert left and right
        assert len(left) + len(right) == len(points)
        assert all(p[decision.split_index] <= decision.split_value for p in left)
        assert all(p[decision.split_index] > decision.split_value for p in right)
