"""The `/v1/metrics` payload schema is stable and uniformly snake_case.

These tests lock down the unified metrics contract documented in
``docs/server.md``: the exact key set of every section, the shared naming
conventions (bare ``qps`` / ``wall_seconds`` in every section that has
them, ``*_ms`` sub-dictionaries always present), and the guarantee that
the ``cache`` section is byte-for-byte what
``QueryEngine.statistics()["cache"]`` reports.
"""

from __future__ import annotations

import json
import re

from server_corpus import INSERT_TRIPLES, QUERY_TRIPLES

SNAKE_CASE = re.compile(r"^[a-z0-9_]+$")

SERVING_KEYS = {
    "queries", "executed", "served_from_cache", "timeouts", "errors",
    "degraded", "overlay_retries", "wall_seconds", "qps", "queries_by_kind",
    "partition_loads", "cost", "latency_ms", "queue_wait_ms", "workers",
}
LATENCY_KEYS = {"mean", "p50", "p90", "p99", "max"}
CACHE_KEYS = {
    "hits", "misses", "lookups", "hit_rate", "evictions", "expirations",
    "invalidations", "promotions", "size", "protected_size",
}
INGEST_KEYS = {
    "inserts", "replayed", "wall_seconds", "qps", "compactions",
    "points_compacted", "compaction_ms", "compaction_threshold",
    "delta_points", "wal_records", "applied_seq", "last_seq",
}
COMPACTION_KEYS = {"mean", "max", "last"}
INDEX_KEYS = {"generation", "points", "tree_points", "kernel", "dimensions"}
SERVER_KEYS = {"uptime_seconds", "requests", "background_compaction", "admission"}
ADMISSION_KEYS = {"enabled", "max_queue_depth", "client_rate", "admitted",
                  "shed", "shed_total", "tracked_clients"}


def walk_keys(payload, path=""):
    if isinstance(payload, dict):
        for key, value in payload.items():
            yield f"{path}.{key}" if path else key, key
            yield from walk_keys(value, f"{path}.{key}" if path else key)
    elif isinstance(payload, list):
        for entry in payload:
            yield from walk_keys(entry, path)


class TestMetricsSchema:
    def test_sections_and_keys_before_any_traffic(self, make_server):
        _, client = make_server()
        metrics = client.metrics()
        assert set(metrics) == {"serving", "cache", "ingest", "index", "server"}
        assert set(metrics["serving"]) == SERVING_KEYS
        assert set(metrics["serving"]["latency_ms"]) == LATENCY_KEYS
        assert set(metrics["serving"]["queue_wait_ms"]) == LATENCY_KEYS
        assert set(metrics["cache"]) == CACHE_KEYS
        assert set(metrics["ingest"]) == INGEST_KEYS
        assert set(metrics["ingest"]["compaction_ms"]) == COMPACTION_KEYS
        assert set(metrics["index"]) == INDEX_KEYS
        assert set(metrics["server"]) == SERVER_KEYS
        assert set(metrics["server"]["admission"]) == ADMISSION_KEYS

    def test_schema_is_identical_under_traffic(self, make_server):
        _, client = make_server(compaction_threshold=4)
        client.insert_many(INSERT_TRIPLES)      # crosses the compaction threshold
        for triple in QUERY_TRIPLES:
            client.knn(triple, 3)
            client.knn(triple, 3)               # cache hit
            client.range(triple, 0.3)
        metrics = client.metrics()
        assert set(metrics["serving"]) == SERVING_KEYS
        assert set(metrics["cache"]) == CACHE_KEYS
        assert set(metrics["ingest"]) == INGEST_KEYS
        assert set(metrics["ingest"]["compaction_ms"]) == COMPACTION_KEYS
        assert metrics["serving"]["queries"] == 3 * len(QUERY_TRIPLES)
        assert metrics["cache"]["hits"] >= len(QUERY_TRIPLES)
        assert metrics["ingest"]["inserts"] == len(INSERT_TRIPLES)

    def test_every_key_is_snake_case(self, make_server):
        _, client = make_server()
        client.knn(QUERY_TRIPLES[0], 2)
        client.insert(INSERT_TRIPLES[0])
        metrics = client.metrics()
        # values under these prefixes are keyed by *data* (partition ids,
        # endpoint names, query kinds), not schema fields
        exempt = ("serving.partition_loads.", "serving.queries_by_kind.",
                  "server.requests.")
        for path, key in walk_keys(metrics):
            if path.startswith(exempt):
                continue
            assert SNAKE_CASE.match(key), f"non-snake_case metrics key: {path}"

    def test_payload_is_json_serialisable(self, make_server):
        _, client = make_server()
        client.knn(QUERY_TRIPLES[0], 2)
        payload = client.metrics()
        assert json.loads(json.dumps(payload)) == payload

    def test_cache_section_matches_engine_statistics(self, make_server):
        server, client = make_server()
        client.knn(QUERY_TRIPLES[0], 2)
        client.knn(QUERY_TRIPLES[0], 2)
        wire = client.metrics()["cache"]
        direct = server.app.engine.statistics()["cache"]
        assert set(wire) == set(direct)
        for key in ("hits", "misses", "lookups", "size", "protected_size"):
            assert wire[key] == direct[key]


class TestPrometheusExposition:
    """``?format=prometheus`` serves the same numbers in exposition v0.0.4."""

    CORE_FAMILIES = {
        "repro_build_info", "repro_uptime_seconds", "repro_http_requests_total",
        "repro_queries_total", "repro_queries_executed_total",
        "repro_query_latency_seconds", "repro_queue_wait_seconds",
        "repro_cache_hits_total", "repro_cache_misses_total",
        "repro_inserts_total", "repro_index_points", "repro_index_generation",
    }

    def scrape(self, client):
        from repro.obs.prometheus import parse_exposition, validate_exposition

        text = client.metrics_prometheus()
        families = parse_exposition(text)
        assert validate_exposition(families) == [], text
        return families

    def test_round_trip_is_valid_and_has_core_series(self, make_server):
        _, client = make_server()
        client.insert_many(INSERT_TRIPLES)
        for triple in QUERY_TRIPLES:
            client.knn(triple, 3)
            client.knn(triple, 3)
        families = self.scrape(client)
        missing = self.CORE_FAMILIES - set(families)
        assert not missing, f"missing core families: {sorted(missing)}"

    def test_formats_report_the_same_counters(self, make_server):
        """The JSON payload and the exposition read the same locked state."""
        _, client = make_server()
        client.insert_many(INSERT_TRIPLES)
        for triple in QUERY_TRIPLES:
            client.knn(triple, 3)
            client.knn(triple, 3)
            client.range(triple, 0.3)
        payload = client.metrics()
        families = self.scrape(client)

        def series(name, **labels):
            for sample in families[name].samples:
                if all(sample.labels.get(k) == v for k, v in labels.items()):
                    return sample.value
            raise AssertionError(f"no series {name} with {labels}")

        assert series("repro_queries_executed_total") == payload["serving"]["executed"]
        assert series("repro_queries_cached_total") == \
            payload["serving"]["served_from_cache"]
        assert series("repro_cache_hits_total") == payload["cache"]["hits"]
        assert series("repro_cache_misses_total") == payload["cache"]["misses"]
        assert series("repro_inserts_total") == payload["ingest"]["inserts"]
        assert series("repro_index_points") == payload["index"]["points"]
        by_kind = payload["serving"]["queries_by_kind"]
        for kind, count in by_kind.items():
            assert series("repro_queries_total", kind=kind) == count
        # The latency histogram's _count equals the executed-query tally
        # (cache hits never observe a latency sample).
        executed = sum(
            sample.value
            for sample in families["repro_query_latency_seconds"].samples
            if sample.name.endswith("_count")
        )
        assert executed == payload["serving"]["executed"]

    def test_unknown_format_is_a_400(self, make_server):
        import pytest

        from repro.errors import ServerError

        _, client = make_server()
        with pytest.raises(ServerError):
            client.request_text("/v1/metrics?format=openmetrics")
