"""Figure 6 — Sequential range-query running time.

The paper plots the running time of the sequential range query while varying
the size of the tree, for a balanced and an unbalanced tree.  Expected
shape: both curves grow with the number of points (more points fall inside a
fixed radius), and the unbalanced tree is consistently more expensive
because its depth makes the descent linear.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.core import KDTree
from repro.evaluation import Experiment, measure
from repro.workloads import perturbed_queries, uniform_points

from .conftest import write_report

DIMENSIONS = 4
BUCKET_SIZE = 16
RADIUS = 0.15
POINT_COUNTS = (1_000, 2_000, 4_000, 8_000, 16_000)
QUERIES = 50
BENCH_POINTS = 8_000


def _trees(count: int):
    points = uniform_points(count, DIMENSIONS, seed=1)
    balanced = KDTree.build_balanced(points, bucket_size=BUCKET_SIZE)
    chain = KDTree.build_chain(points)
    return points, balanced, chain


def _query_batch(tree: KDTree, points) -> Dict[str, float]:
    workload = perturbed_queries(points, QUERIES, radius=RADIUS, seed=3)
    nodes_visited = 0
    found = 0

    def run():
        nonlocal nodes_visited, found
        nodes_visited = 0
        found = 0
        for query in workload:
            results, visited = tree.range_query_state(query, RADIUS)
            nodes_visited += visited
            found += len(results)

    sample = measure(run)
    return {
        "wall_ms_per_query": sample.wall_ms / QUERIES,
        "nodes_visited_per_query": nodes_visited / QUERIES,
        "results_per_query": found / QUERIES,
    }


# -- pytest-benchmark cases ---------------------------------------------------------------

@pytest.mark.benchmark(group="fig6-sequential-range")
def test_range_balanced_tree(benchmark):
    points, balanced, _ = _trees(BENCH_POINTS)
    workload = perturbed_queries(points, QUERIES, radius=RADIUS, seed=3)

    def run():
        return sum(len(balanced.range_query(query, RADIUS)) for query in workload)

    assert benchmark(run) > 0


@pytest.mark.benchmark(group="fig6-sequential-range")
def test_range_unbalanced_chain_tree(benchmark):
    points, _, chain = _trees(BENCH_POINTS)
    workload = perturbed_queries(points, QUERIES, radius=RADIUS, seed=3)

    def run():
        return sum(len(chain.range_query(query, RADIUS)) for query in workload)

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 0


# -- the figure itself ----------------------------------------------------------------------

@pytest.mark.benchmark(group="fig6-sequential-range")
def test_report_fig6(benchmark, results_dir):
    def run_sweep() -> Experiment:
        experiment = Experiment(
            experiment_id="fig6_sequential_range_time",
            description="Sequential range-query time vs number of points (Fig. 6)",
            swept_parameter="points",
        )
        for count in POINT_COUNTS:
            points, balanced, chain = _trees(count)
            experiment.record("balanced", count, **_query_batch(balanced, points))
            experiment.record("unbalanced", count, **_query_batch(chain, points))
        return experiment

    experiment = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    balanced = experiment.series["balanced"]
    unbalanced = experiment.series["unbalanced"]
    # Both configurations return the same answers (sanity: same result counts).
    assert balanced.values("results_per_query") == pytest.approx(
        unbalanced.values("results_per_query"))
    # The unbalanced tree visits more nodes at every size and grows faster.
    for balanced_point, unbalanced_point in zip(balanced.points, unbalanced.points):
        assert (unbalanced_point.metric("nodes_visited_per_query")
                >= balanced_point.metric("nodes_visited_per_query"))
    assert (unbalanced.values("wall_ms_per_query")[-1]
            > balanced.values("wall_ms_per_query")[-1])

    write_report(results_dir, experiment,
                 ["wall_ms_per_query", "nodes_visited_per_query", "results_per_query"])
