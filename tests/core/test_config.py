"""Tests for the SemTree configuration object."""

import pytest

from repro.core import CapacityPolicy, SemTreeConfig, SplitStrategy
from repro.errors import IndexError_


class TestValidation:
    def test_defaults_are_valid(self):
        config = SemTreeConfig()
        assert config.dimensions == 4
        assert config.max_partitions == 1
        assert config.split_strategy is SplitStrategy.MEDIAN
        assert config.capacity_policy is CapacityPolicy.STATIC

    @pytest.mark.parametrize("kwargs", [
        {"dimensions": 0},
        {"bucket_size": 0},
        {"max_partitions": 0},
        {"partition_capacity": 4, "bucket_size": 16},
        {"node_capacity_fraction": 0.0},
        {"node_capacity_fraction": 1.5},
        {"node_visit_cost": -1.0},
        {"point_visit_cost": -0.1},
        {"point_insert_cost": -0.1},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(IndexError_):
            SemTreeConfig(**kwargs)

    def test_partition_capacity_must_cover_bucket(self):
        config = SemTreeConfig(bucket_size=8, partition_capacity=8)
        assert config.partition_capacity == 8

    def test_with_updates_returns_modified_copy(self):
        config = SemTreeConfig(dimensions=4)
        updated = config.with_updates(dimensions=2, max_partitions=5)
        assert updated.dimensions == 2 and updated.max_partitions == 5
        assert config.dimensions == 4 and config.max_partitions == 1

    def test_config_is_frozen(self):
        config = SemTreeConfig()
        with pytest.raises(AttributeError):
            config.dimensions = 7  # type: ignore[misc]
