"""Booting a server process from durable state on disk.

A checkpoint snapshot intentionally does **not** serialise the semantic
distance — it is a function (see :mod:`repro.service.snapshot`).  A server
process booting from ``--snapshot`` + ``--wal`` therefore has to rebuild an
equivalent :class:`~repro.semantics.triple_distance.TripleDistance` first.
For the requirements case study this is mechanical: the function taxonomy
and antinomy pairs are static (:mod:`repro.requirements.vocabulary`), and
the data-dependent parts — actor names and parameter values — can be read
back from the very triples the snapshot and WAL carry.

:func:`derive_distance` does exactly that: harvest every triple in the
durable state, rebuild the requirement vocabularies over the harvested
actors/parameters (plus any extra actors the operator names), and wire the
default-weight distance.  :func:`recover_index` then performs the standard
checkpoint + WAL-tail recovery with it.

Exactness caveat: the round trip reproduces the previous process exactly
when every stored term was already in that process's vocabularies (the
normal case — vocabularies built from the corpus, covered by
``tests/server/``).  A term that the previous process did *not* know — an
insert naming a brand-new actor, served there through the string-distance
fallback — is harvested here and gains real taxonomy placement, so
rankings involving that triple can legitimately differ after the restart
(they get better, not worse).  Persisting the vocabulary hints in the
checkpoint would close even that gap; see the ROADMAP.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import ParseError
from repro.ingest.ingesting import DEFAULT_COMPACTION_THRESHOLD, IngestingIndex
from repro.io.serialization import iter_json_lines, triple_from_dict
from repro.rdf.terms import Concept
from repro.rdf.triple import Triple
from repro.requirements.vocabulary import (PARAMETER_PREFIXES,
                                           build_requirement_distance,
                                           build_requirement_vocabularies)
from repro.semantics.triple_distance import TripleDistance

__all__ = [
    "harvest_triples",
    "vocabulary_hints",
    "derive_distance",
    "recover_index",
]


def _walk_triples(payload: Any) -> Iterator[Triple]:
    """Yield every serialised triple found anywhere inside a JSON payload.

    A wire triple is a dictionary holding ``subject`` / ``predicate`` /
    ``object`` term dictionaries; the walk is generic so it finds them in
    the embedding space's object list, the tree's leaf buckets, the
    provenance map and the pending list alike — wherever the snapshot
    format puts them now or later.
    """
    if isinstance(payload, dict):
        keys = payload.keys()
        if {"subject", "predicate", "object"} <= set(keys) and all(
            isinstance(payload[position], dict)
            for position in ("subject", "predicate", "object")
        ):
            try:
                yield triple_from_dict(payload)
                return
            except (ParseError, KeyError, TypeError):
                pass  # not a triple after all (term dicts may be malformed
                      # or incomplete in arbitrary JSON); keep walking
        for value in payload.values():
            yield from _walk_triples(value)
    elif isinstance(payload, list):
        for value in payload:
            yield from _walk_triples(value)


def harvest_triples(snapshot_path: str | pathlib.Path,
                    wal_path: str | pathlib.Path | None = None) -> List[Triple]:
    """Every distinct triple in a snapshot and (optionally) a WAL, in file order."""
    try:
        payload = json.loads(pathlib.Path(snapshot_path).read_text())
    except json.JSONDecodeError as error:
        raise ParseError(f"snapshot is not valid JSON: {error}") from error
    triples = list(_walk_triples(payload))
    if wal_path is not None and pathlib.Path(wal_path).exists():
        for _, record in iter_json_lines(wal_path, tolerate_torn_tail=True):
            triple_payload = record.get("triple")
            if isinstance(triple_payload, dict):
                triples.extend(_walk_triples(triple_payload))
    return list(dict.fromkeys(triples))


def vocabulary_hints(triples: Iterable[Triple]) -> Tuple[List[str], Dict[str, List[str]]]:
    """Actor names and per-prefix parameter values mentioned by ``triples``.

    Subjects in the default (empty-prefix) vocabulary are actors; objects
    whose prefix is one of the case study's parameter prefixes contribute
    parameter values.  Both lists are deduplicated, first-seen order.
    """
    actors: Dict[str, None] = {}
    parameters: Dict[str, Dict[str, None]] = {}
    for triple in triples:
        subject = triple.subject
        if isinstance(subject, Concept) and subject.prefix == "":
            actors.setdefault(subject.name)
        obj = triple.object
        if isinstance(obj, Concept) and obj.prefix in PARAMETER_PREFIXES:
            parameters.setdefault(obj.prefix, {}).setdefault(obj.name)
    return list(actors), {prefix: list(values) for prefix, values in parameters.items()}


def derive_distance(snapshot_path: str | pathlib.Path,
                    wal_path: str | pathlib.Path | None = None, *,
                    extra_actors: Sequence[str] = ()) -> TripleDistance:
    """The requirement-case-study distance matching a durable state on disk.

    ``extra_actors`` lets the operator pre-register actors that future
    inserts will mention but the stored corpus does not yet (terms unknown to
    a vocabulary still work — the term distance falls back to a string
    distance — but taxonomy placement gives them real semantics).
    """
    actors, parameter_values = vocabulary_hints(
        harvest_triples(snapshot_path, wal_path)
    )
    for name in extra_actors:
        if name and name not in actors:
            actors.append(name)
    return build_requirement_distance(
        build_requirement_vocabularies(actors, parameter_values)
    )


def recover_index(snapshot_path: str | pathlib.Path,
                  wal_path: str | pathlib.Path, *,
                  extra_actors: Sequence[str] = (),
                  compaction_threshold: int = DEFAULT_COMPACTION_THRESHOLD,
                  ) -> IngestingIndex:
    """Checkpoint + WAL-tail recovery with a snapshot-derived distance.

    The convenience composition the CLI uses: :func:`derive_distance` over
    the on-disk state, then :meth:`IngestingIndex.recover`.
    """
    distance = derive_distance(snapshot_path, wal_path, extra_actors=extra_actors)
    return IngestingIndex.recover(
        snapshot_path, wal_path, distance,
        compaction_threshold=compaction_threshold,
    )
