"""Service throughput — batched vs sequential execution, cache-hit speedup.

The serving layer's pitch is that batching queries over a worker pool plus a
result cache beats issuing them one at a time against the bare index.  This
benchmark builds a requirements corpus, runs a 256-query mixed k-NN/range
workload through the :class:`~repro.service.engine.QueryEngine` and reports

* sequential QPS (the ``execute_sequential`` baseline, no cache),
* cold batched QPS (first batch, worker pool, cache misses),
* warm batched QPS (identical repeat batch, all cache hits),

while sweeping the worker count.  Expected shape: warm beats cold by a wide
margin (a cache hit skips the tree entirely), results are bit-identical to
the sequential baseline everywhere, and the repeated workload reports a
non-zero cache hit rate.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.core import SemTreeConfig, SemTreeIndex
from repro.evaluation import Experiment, measure
from repro.requirements import (GeneratorConfig, RequirementsGenerator,
                                build_requirement_distance,
                                build_requirement_vocabularies)
from repro.service import QueryEngine
from repro.workloads import mixed_query_specs

from .conftest import write_report

WORKER_COUNTS = (1, 2, 4, 8)
BATCH_SIZE = 256
BENCH_WORKERS = 4


def _build_index() -> tuple:
    config = GeneratorConfig(
        documents=8, requirements_per_document=6, sentences_per_requirement=3,
        actors=16, inconsistency_rate=0.2, restatement_rate=0.2, seed=29,
    )
    corpus = RequirementsGenerator(config).generate()
    vocabularies = build_requirement_vocabularies(
        corpus.actor_names, corpus.parameter_values
    )
    distance = build_requirement_distance(vocabularies)
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=4, bucket_size=8, max_partitions=4, partition_capacity=48,
    ))
    for document in corpus.documents:
        index.add_document(document.to_rdf_document())
    index.build()
    triples = list(dict.fromkeys(corpus.all_triples()))
    return index, triples


def _workload(triples):
    return mixed_query_specs(triples, BATCH_SIZE, k=3, radius=0.15,
                             repeat_fraction=0.3, seed=17)


def _measure_engine(index, specs, workers: int) -> Dict[str, float]:
    with QueryEngine(index, workers=workers) as engine:
        sequential = measure(lambda: engine.execute_sequential(specs))
        cold = measure(lambda: engine.execute_batch(specs))
        warm = measure(lambda: engine.execute_batch(specs))
        hit_rate = engine.cache.stats.hit_rate
    return {
        "sequential_qps": len(specs) / max(sequential.wall_seconds, 1e-9),
        "cold_qps": len(specs) / max(cold.wall_seconds, 1e-9),
        "warm_qps": len(specs) / max(warm.wall_seconds, 1e-9),
        "cache_hit_rate": hit_rate,
    }


# -- pytest-benchmark cases ---------------------------------------------------------------

@pytest.mark.benchmark(group="service-throughput")
def test_batched_execution(benchmark):
    index, triples = _build_index()
    specs = _workload(triples)
    with QueryEngine(index, workers=BENCH_WORKERS) as engine:
        results = benchmark(lambda: engine.execute_batch(specs))
    assert len(results) == BATCH_SIZE


@pytest.mark.benchmark(group="service-throughput")
def test_sequential_execution(benchmark):
    index, triples = _build_index()
    specs = _workload(triples)
    with QueryEngine(index, workers=1) as engine:
        results = benchmark.pedantic(
            lambda: engine.execute_sequential(specs), rounds=3, iterations=1
        )
    assert len(results) == BATCH_SIZE


# -- the report itself --------------------------------------------------------------------

def test_report_service_throughput(results_dir):
    index, triples = _build_index()
    specs = _workload(triples)

    # Correctness first: batched results must equal sequential results.
    with QueryEngine(index, workers=BENCH_WORKERS) as engine:
        batched = engine.execute_batch(specs)
        sequential = engine.execute_sequential(specs)
    assert all(a.matches == b.matches for a, b in zip(batched, sequential))

    experiment = Experiment(
        experiment_id="service_throughput",
        description="QueryEngine throughput: sequential vs cold batch vs warm batch "
                    f"({BATCH_SIZE} mixed k-NN/range queries)",
        swept_parameter="workers",
    )
    experiment.run_sweep(
        "engine", WORKER_COUNTS, lambda workers: _measure_engine(index, specs, int(workers))
    )

    series = experiment.series["engine"]
    # A repeated workload must actually hit the cache ...
    assert all(rate > 0.0 for rate in series.values("cache_hit_rate"))
    # ... and serving hits must beat re-searching the tree, at every worker count.
    for warm, cold in zip(series.values("warm_qps"), series.values("cold_qps")):
        assert warm > cold

    write_report(results_dir, experiment,
                 ["sequential_qps", "cold_qps", "warm_qps", "cache_hit_rate"])
