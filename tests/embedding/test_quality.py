"""Tests for the embedding-quality diagnostics."""

import math

import pytest

from repro.embedding import FastMap, distortion, neighbourhood_overlap, sample_pairs, stress
from repro.errors import EmbeddingError


def euclidean(a, b):
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


@pytest.fixture
def planar_space():
    objects = [(i / 7.0, (i * 3 % 11) / 11.0) for i in range(40)]
    return FastMap(euclidean, dimensions=2, seed=0).fit(objects)


class TestSamplePairs:
    def test_returns_all_pairs_when_few(self):
        pairs = sample_pairs(4, max_pairs=100)
        assert len(pairs) == 6
        assert all(i < j for i, j in pairs)

    def test_caps_the_number_of_pairs(self):
        pairs = sample_pairs(100, max_pairs=50, seed=3)
        assert len(pairs) == 50
        assert len(set(pairs)) == 50

    def test_requires_two_objects(self):
        with pytest.raises(EmbeddingError):
            sample_pairs(1, max_pairs=10)


class TestStress:
    def test_euclidean_input_has_negligible_stress(self, planar_space):
        assert stress(planar_space, euclidean) == pytest.approx(0.0, abs=1e-6)

    def test_non_euclidean_input_has_positive_but_bounded_stress(self):
        objects = [f"o{i}" for i in range(15)]
        discrete = lambda a, b: 0.0 if a == b else 1.0
        space = FastMap(discrete, dimensions=2, seed=0).fit(objects)
        value = stress(space, discrete)
        assert 0.0 < value < 1.0


class TestDistortion:
    def test_euclidean_input_has_unit_ratios(self, planar_space):
        report = distortion(planar_space, euclidean)
        assert report["max_expansion"] == pytest.approx(1.0, abs=1e-6)
        assert report["max_contraction"] == pytest.approx(1.0, abs=1e-6)
        assert report["mean_absolute_error"] == pytest.approx(0.0, abs=1e-9)

    def test_report_keys(self, planar_space):
        report = distortion(planar_space, euclidean)
        assert set(report) == {"max_expansion", "max_contraction", "mean_absolute_error"}


class TestNeighbourhoodOverlap:
    def test_perfect_embedding_has_near_full_overlap(self, planar_space):
        # Ties between equidistant neighbours can be broken differently by the
        # two rankings, so allow a small slack below 1.0.
        assert neighbourhood_overlap(planar_space, euclidean, k=5, sample_size=10) >= 0.9

    def test_requires_enough_objects(self):
        objects = [(0.0, 0.0), (1.0, 1.0)]
        space = FastMap(euclidean, dimensions=2, seed=0).fit(objects)
        with pytest.raises(EmbeddingError):
            neighbourhood_overlap(space, euclidean, k=5)

    def test_overlap_in_unit_interval_for_semantic_like_distance(self):
        objects = [f"obj-{i}" for i in range(20)]

        def pseudo_distance(a, b):
            return 0.0 if a == b else abs(hash((a, b)) % 97) / 97.0 * 0.5 + 0.25

        symmetric = lambda a, b: pseudo_distance(*sorted((a, b)))
        space = FastMap(symmetric, dimensions=3, seed=0).fit(objects)
        value = neighbourhood_overlap(space, symmetric, k=3, sample_size=10)
        assert 0.0 <= value <= 1.0
