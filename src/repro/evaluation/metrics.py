"""Effectiveness metrics — the Precision/Recall of Section IV-B.

The paper computes, for each target-triple query,

.. math::

    P = \\frac{|T \\cap T^*|}{|T|}, \\qquad R = \\frac{|T \\cap T^*|}{|T^*|}

where ``T`` is the k-NN result set and ``T*`` the ground truth, and reports
the averages over the 100 query cases for each value of ``K`` (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, TypeVar

from repro.errors import EvaluationError

__all__ = ["PrecisionRecall", "precision", "recall", "f1_score", "evaluate_retrieval",
           "average_precision_recall"]

ItemT = TypeVar("ItemT")


@dataclass(frozen=True, slots=True)
class PrecisionRecall:
    """A precision/recall pair plus the derived F1 score."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def precision(retrieved: Iterable[ItemT], expected: Iterable[ItemT]) -> float:
    """``|T ∩ T*| / |T|``; 1.0 by convention when nothing was retrieved."""
    retrieved_set = set(retrieved)
    if not retrieved_set:
        return 1.0
    expected_set = set(expected)
    return len(retrieved_set & expected_set) / len(retrieved_set)


def recall(retrieved: Iterable[ItemT], expected: Iterable[ItemT]) -> float:
    """``|T ∩ T*| / |T*|``; 1.0 by convention when the ground truth is empty."""
    expected_set = set(expected)
    if not expected_set:
        return 1.0
    retrieved_set = set(retrieved)
    return len(retrieved_set & expected_set) / len(expected_set)


def f1_score(retrieved: Iterable[ItemT], expected: Iterable[ItemT]) -> float:
    """F1 of one retrieval result."""
    retrieved_set = set(retrieved)
    expected_set = set(expected)
    return PrecisionRecall(
        precision(retrieved_set, expected_set), recall(retrieved_set, expected_set)
    ).f1


def evaluate_retrieval(retrieved: Iterable[ItemT], expected: Iterable[ItemT]) -> PrecisionRecall:
    """Precision and recall of one retrieval result."""
    retrieved_set = set(retrieved)
    expected_set = set(expected)
    return PrecisionRecall(
        precision(retrieved_set, expected_set), recall(retrieved_set, expected_set)
    )


def average_precision_recall(results: Sequence[PrecisionRecall]) -> PrecisionRecall:
    """Macro-average of per-query precision/recall pairs (the paper's averages).

    Raises
    ------
    EvaluationError
        If ``results`` is empty.
    """
    if not results:
        raise EvaluationError("cannot average an empty list of results")
    mean_precision = sum(result.precision for result in results) / len(results)
    mean_recall = sum(result.recall for result in results) / len(results)
    return PrecisionRecall(mean_precision, mean_recall)
